//! Vertex properties.
//!
//! `Nodes(ID, Name) :- Author(ID, Name)` turns extra attributes into vertex
//! properties (§3.2). Properties are stored column-wise next to the graph,
//! keyed by dense real id, so representations stay property-agnostic.

use crate::ids::RealId;
use graphgen_common::FxHashMap;

/// A property value.
#[derive(Debug, Clone, PartialEq)]
pub enum PropValue {
    /// Integer property.
    Int(i64),
    /// Floating-point property (used by algorithms, e.g. precomputed degree).
    Float(f64),
    /// Text property.
    Text(String),
}

impl PropValue {
    /// As integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            PropValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// As float (ints widen).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            PropValue::Float(v) => Some(*v),
            PropValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// As text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            PropValue::Text(s) => Some(s),
            _ => None,
        }
    }
}

/// Column-wise property storage for `n` vertices.
#[derive(Debug, Clone, Default)]
pub struct Properties {
    pub(crate) n: usize,
    pub(crate) columns: FxHashMap<String, Vec<Option<PropValue>>>,
}

impl Properties {
    /// Storage for `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            columns: FxHashMap::default(),
        }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if it covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Grow to cover at least `n` vertices (new slots hold no values).
    pub fn grow(&mut self, n: usize) {
        if n > self.n {
            self.n = n;
            for col in self.columns.values_mut() {
                col.resize(n, None);
            }
        }
    }

    /// Set `name` for vertex `u`.
    pub fn set(&mut self, u: RealId, name: &str, value: PropValue) {
        let n = self.n;
        let col = self
            .columns
            .entry(name.to_string())
            .or_insert_with(|| vec![None; n]);
        col[u.0 as usize] = Some(value);
    }

    /// Get `name` for vertex `u`.
    pub fn get(&self, u: RealId, name: &str) -> Option<&PropValue> {
        self.columns.get(name)?.get(u.0 as usize)?.as_ref()
    }

    /// Remove the value of `name` for vertex `u`, if any.
    pub fn unset(&mut self, u: RealId, name: &str) {
        if let Some(col) = self.columns.get_mut(name) {
            if let Some(slot) = col.get_mut(u.0 as usize) {
                *slot = None;
            }
        }
    }

    /// Remove every property value of vertex `u` (used when incremental
    /// maintenance re-derives a node's properties from the surviving base
    /// rows).
    pub fn clear_vertex(&mut self, u: RealId) {
        for col in self.columns.values_mut() {
            if let Some(slot) = col.get_mut(u.0 as usize) {
                *slot = None;
            }
        }
    }

    /// Property names present.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.columns.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut p = Properties::new(3);
        p.set(RealId(1), "name", PropValue::Text("alice".into()));
        p.set(RealId(1), "age", PropValue::Int(30));
        assert_eq!(p.get(RealId(1), "name").unwrap().as_text(), Some("alice"));
        assert_eq!(p.get(RealId(1), "age").unwrap().as_int(), Some(30));
        assert!(p.get(RealId(0), "name").is_none());
        assert!(p.get(RealId(1), "missing").is_none());
    }

    #[test]
    fn grow_preserves_values() {
        let mut p = Properties::new(1);
        p.set(RealId(0), "x", PropValue::Float(1.5));
        p.grow(5);
        assert_eq!(p.len(), 5);
        assert_eq!(p.get(RealId(0), "x").unwrap().as_float(), Some(1.5));
        assert!(p.get(RealId(4), "x").is_none());
    }

    #[test]
    fn float_widening() {
        assert_eq!(PropValue::Int(2).as_float(), Some(2.0));
        assert_eq!(PropValue::Text("x".into()).as_float(), None);
    }

    #[test]
    fn unset_and_clear() {
        let mut p = Properties::new(2);
        p.set(RealId(0), "a", PropValue::Int(1));
        p.set(RealId(0), "b", PropValue::Int(2));
        p.set(RealId(1), "a", PropValue::Int(3));
        p.unset(RealId(0), "a");
        assert!(p.get(RealId(0), "a").is_none());
        assert!(p.get(RealId(0), "b").is_some());
        p.clear_vertex(RealId(0));
        assert!(p.get(RealId(0), "b").is_none());
        assert_eq!(p.get(RealId(1), "a").unwrap().as_int(), Some(3));
        // Unset of a missing column / out-of-range vertex is a no-op.
        p.unset(RealId(0), "missing");
    }

    #[test]
    fn names_listed() {
        let mut p = Properties::new(1);
        p.set(RealId(0), "a", PropValue::Int(1));
        p.set(RealId(0), "b", PropValue::Int(2));
        let mut names: Vec<&str> = p.names().collect();
        names.sort_unstable();
        assert_eq!(names, vec!["a", "b"]);
    }
}
