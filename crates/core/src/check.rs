//! Static analysis against a live database (the `graphgen-check` engine
//! bound to real catalog metadata).
//!
//! The DSL crate's checker ([`graphgen_dsl::check_program`]) validates a
//! program against a [`CheckCatalog`] — an engine-neutral snapshot of
//! relation schemas and statistics. This module derives that snapshot from
//! a [`Database`], so the same diagnostics the `graphgen-check` CLI emits
//! over a `.ggs` schema file are produced from the actual tables an
//! extraction would run against: exact column types, row counts, and the
//! maintained `n_distinct` statistics the §4.2 planner consults.

use graphgen_dsl::{CheckCatalog, ColType, RelationInfo};
use graphgen_reldb::{DataType, Database};

/// Snapshot the database's schema and statistics as a checker catalog.
///
/// Every registered table becomes a relation with its column names/types,
/// row count, and per-column distinct counts — the statistics are always
/// present (the engine maintains them incrementally), so plan lints like
/// W105 (`large-output-segment`) use the same numbers the planner's
/// large-output test would.
pub fn catalog_view(db: &Database) -> CheckCatalog {
    let mut catalog = CheckCatalog::new();
    for name in db.table_names() {
        let table = db.table(name).expect("listed table exists");
        let columns: Vec<(String, ColType)> = table
            .schema()
            .columns()
            .iter()
            .map(|c| {
                let ty = match c.dtype {
                    DataType::Int => ColType::Int,
                    DataType::Str => ColType::Str,
                };
                (c.name.clone(), ty)
            })
            .collect();
        let n_distinct: Vec<Option<u64>> = (0..columns.len())
            .map(|i| db.column_stats(name, i).ok().map(|s| s.n_distinct as u64))
            .collect();
        let info = RelationInfo::new(columns).with_stats(table.num_rows() as u64, n_distinct);
        catalog.add(name, info);
    }
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_reldb::{Column, Schema, Table, Value};

    fn db() -> Database {
        let mut t = Table::new(Schema::new(vec![Column::int("aid"), Column::str("tag")]));
        for (a, s) in [(1, "x"), (2, "x"), (2, "y")] {
            t.push_row(vec![Value::int(a), Value::str(s)]).unwrap();
        }
        let mut db = Database::new();
        db.register("AuthorPub", t).unwrap();
        db
    }

    #[test]
    fn catalog_mirrors_schema_and_stats() {
        let catalog = catalog_view(&db());
        let info = catalog.relation("AuthorPub").expect("registered");
        assert_eq!(
            info.columns,
            vec![
                ("aid".to_string(), ColType::Int),
                ("tag".to_string(), ColType::Str)
            ]
        );
        assert_eq!(info.row_count, Some(3));
        assert_eq!(info.n_distinct, vec![Some(2), Some(2)]);
        assert!(catalog.relation("Missing").is_none());
    }

    #[test]
    fn checker_sees_live_tables() {
        use graphgen_dsl::{check_source, CheckOptions};
        let catalog = catalog_view(&db());
        let report = check_source(
            "Nodes(ID) :- AuthorPub(ID, _).\nEdges(A, B) :- AuthorPub(A, T), AuthorPub(B, T).",
            Some(&catalog),
            &CheckOptions::default(),
        );
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        let report = check_source(
            "Nodes(ID) :- AuthorPubs(ID, _).",
            Some(&catalog),
            &CheckOptions::default(),
        );
        assert_eq!(report.diagnostics[0].code.code(), "E001");
    }
}
