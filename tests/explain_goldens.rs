//! Golden-locked EXPLAIN renderings for every shipped example query.
//!
//! Each `examples/queries/*.ggd` program is costed by `GraphGen::explain`
//! against its seeded datagen database (see `plan_corpus`) and the
//! rendered plan tree is compared byte-for-byte against
//! `tests/goldens/<stem>.explain`. This is the CI plan-regression gate: a
//! change to the cost model, the enumeration, or the renderer shows up as
//! a golden diff, never as a silent plan change.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test --test explain_goldens
//! ```

mod plan_corpus;

use graphgen::core::GraphGen;
use std::path::Path;

#[test]
fn explain_matches_goldens_for_every_shipped_query() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let update = std::env::var_os("GOLDEN_UPDATE").is_some();
    let mut diffs = Vec::new();
    for (stem, db) in plan_corpus::corpus() {
        let dsl = plan_corpus::query_source(stem);
        let rendered = GraphGen::new(&db)
            .explain(&dsl)
            .unwrap_or_else(|e| panic!("{stem}: explain failed: {e}"))
            .to_string();
        let golden = root.join(format!("tests/goldens/{stem}.explain"));
        if update {
            std::fs::create_dir_all(golden.parent().unwrap()).unwrap();
            std::fs::write(&golden, &rendered).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
            panic!(
                "{stem}: missing golden {} ({e}); run with GOLDEN_UPDATE=1 to create it",
                golden.display()
            )
        });
        if rendered != expected {
            diffs.push(format!(
                "--- {stem} (golden)\n{expected}--- {stem} (got)\n{rendered}"
            ));
        }
    }
    assert!(
        diffs.is_empty(),
        "EXPLAIN output drifted from the goldens; if the plan change is \
         intentional, regenerate with GOLDEN_UPDATE=1:\n{}",
        diffs.join("\n")
    );
}

/// The goldens directory must stay in lockstep with the corpus: no
/// orphaned `.explain` files for queries that no longer ship.
#[test]
fn no_stray_golden_files() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens");
    let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
        .expect("tests/goldens exists (run with GOLDEN_UPDATE=1 once)")
        .filter_map(|e| {
            let name = e.unwrap().file_name().into_string().unwrap();
            name.strip_suffix(".explain").map(str::to_string)
        })
        .collect();
    on_disk.sort();
    let mut expected: Vec<String> = plan_corpus::corpus()
        .iter()
        .map(|(stem, _)| stem.to_string())
        .collect();
    expected.sort();
    assert_eq!(on_disk, expected, "tests/goldens diverged from the corpus");
}
