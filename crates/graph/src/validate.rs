//! Structural invariant validation.
//!
//! These checks back the property-test suites: each representation promises
//! a structural invariant (C-DUP: the virtual graph is a DAG; DEDUP-1: at
//! most one path per ordered real pair; DEDUP-2: at most one witness per
//! pair plus the Appendix-B overlap rules; BITMAP: masked traversal emits no
//! duplicates).

use crate::api::GraphRep;
use crate::cdup::CondensedGraph;
use crate::dedup1::Dedup1Graph;
use crate::dedup2::Dedup2Graph;
use crate::ids::{RealId, VirtId};
use graphgen_common::FxHashMap;

/// Check that the virtual→virtual edges of a condensed graph form a DAG
/// (extraction queries are acyclic, so this must always hold).
pub fn validate_virtual_dag(g: &CondensedGraph) -> Result<(), String> {
    // Kahn's algorithm over the virtual→virtual subgraph: if the
    // topological order does not cover every node, a cycle exists.
    let n = g.num_virtual();
    let mut indeg = vec![0u32; n];
    for v in 0..n {
        for a in g.virt_out(VirtId(v as u32)) {
            if let Some(w) = a.as_virtual() {
                indeg[w.0 as usize] += 1;
            }
        }
    }
    let mut queue: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
    let mut done = 0usize;
    while let Some(v) = queue.pop() {
        done += 1;
        for a in g.virt_out(VirtId(v)) {
            if let Some(w) = a.as_virtual() {
                indeg[w.0 as usize] -= 1;
                if indeg[w.0 as usize] == 0 {
                    queue.push(w.0);
                }
            }
        }
    }
    if done != n {
        return Err(format!(
            "virtual graph has a cycle ({} of {n} sorted)",
            done
        ));
    }
    Ok(())
}

/// Count, for each source, how many *paths* reach each target (ignoring
/// liveness and self-paths). Returns an error if any pair has more than one.
fn count_paths_from<G, F>(g: &G, u: RealId, raw_visit: F) -> Result<(), String>
where
    G: GraphRep + ?Sized,
    F: Fn(&G, RealId, &mut dyn FnMut(RealId)),
{
    let mut counts: FxHashMap<u32, u32> = FxHashMap::default();
    raw_visit(g, u, &mut |v: RealId| {
        *counts.entry(v.0).or_insert(0) += 1;
    });
    for (v, c) in counts {
        if c > 1 {
            return Err(format!("{} paths from r{} to r{}", c, u.0, v));
        }
    }
    Ok(())
}

/// DEDUP-1 invariant: for every live real source, the raw DFS (no hashset)
/// reaches every distinct neighbor exactly once.
pub fn validate_dedup1(g: &Dedup1Graph) -> Result<(), String> {
    for u in g.vertices() {
        count_paths_from(g, u, |g, u, f| g.for_each_neighbor(u, f))?;
    }
    Ok(())
}

/// Generic duplicate-emission check usable for any representation whose
/// `for_each_neighbor` is supposed to be duplicate-free without internal
/// hashing (DEDUP-1, DEDUP-2, BITMAP).
pub fn validate_no_duplicate_emission<G: GraphRep + ?Sized>(g: &G) -> Result<(), String> {
    for u in g.vertices() {
        count_paths_from(g, u, |g, u, f| g.for_each_neighbor(u, f))?;
    }
    Ok(())
}

/// DEDUP-2 invariants (Appendix B):
/// 1. any two virtual nodes overlap in at most one real member;
/// 2. the virtual neighbors of any virtual node are pairwise disjoint;
/// 3. per ordered pair, at most one witness — checked directly by raw
///    emission counting.
pub fn validate_dedup2(g: &Dedup2Graph) -> Result<(), String> {
    // (3) covers semantic correctness; (1) and (2) are the structural rules.
    for u in g.vertices() {
        let mut counts: FxHashMap<u32, u32> = FxHashMap::default();
        g.for_each_neighbor_raw(u, &mut |v| {
            *counts.entry(v).or_insert(0) += 1;
        });
        for (v, c) in counts {
            if c > 1 {
                return Err(format!("{} witnesses for pair (r{}, r{})", c, u.0, v));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CondensedBuilder;

    #[test]
    fn dag_validation_accepts_layers() {
        let mut b = CondensedBuilder::new(2);
        let v1 = b.add_virtual();
        let v2 = b.add_virtual();
        b.real_to_virtual(RealId(0), v1);
        b.virtual_to_virtual(v1, v2);
        b.virtual_to_real(v2, RealId(1));
        let g = b.build();
        assert!(validate_virtual_dag(&g).is_ok());
    }

    #[test]
    fn dedup1_validation_rejects_duplicates() {
        let mut b = CondensedBuilder::new(2);
        b.clique(&[RealId(0), RealId(1)]);
        b.clique(&[RealId(0), RealId(1)]);
        let g = Dedup1Graph::new_unchecked(b.build());
        assert!(validate_dedup1(&g).is_err());
    }

    #[test]
    fn dedup1_validation_accepts_clean_graph() {
        let mut b = CondensedBuilder::new(3);
        b.clique(&[RealId(0), RealId(1), RealId(2)]);
        let g = Dedup1Graph::new_unchecked(b.build());
        assert!(validate_dedup1(&g).is_ok());
    }

    #[test]
    fn dedup2_validation_rejects_overlap_two() {
        let mut g = Dedup2Graph::new(3);
        g.add_virtual(vec![0, 1, 2]);
        g.add_virtual(vec![0, 1]); // overlap {0,1} with the first: duplicate pair
        assert!(validate_dedup2(&g).is_err());
    }

    #[test]
    fn dedup2_validation_rejects_vv_overlap() {
        let mut g = Dedup2Graph::new(4);
        let v = g.add_virtual(vec![0, 1]);
        let w1 = g.add_virtual(vec![2, 3]);
        let w2 = g.add_virtual(vec![3]);
        g.add_virtual_edge(v, w1);
        g.add_virtual_edge(v, w2); // w1 and w2 share member 3 -> 0 sees 3 twice
        assert!(validate_dedup2(&g).is_err());
    }
}
