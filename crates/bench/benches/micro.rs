//! Criterion microbenchmarks of the Graph API per representation (Fig. 13).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphgen_bench::RepSet;
use graphgen_common::SplitMix64;
use graphgen_datagen::{synthetic_condensed, CondensedGenConfig};
use graphgen_graph::{GraphRep, RealId};

fn dataset() -> RepSet {
    RepSet::build(
        "micro",
        synthetic_condensed(CondensedGenConfig {
            n_real: 1_000,
            n_virtual: 2_000,
            mean_size: 7.0,
            sd_size: 3.0,
            seed: 11,
        }),
    )
}

fn bench_micro(c: &mut Criterion) {
    let set = dataset();
    let mut rng = SplitMix64::new(5);
    let nodes: Vec<RealId> = (0..256)
        .map(|_| RealId(rng.next_below(set.exp.num_real_slots() as u64) as u32))
        .collect();

    let mut group = c.benchmark_group("get_neighbors");
    group.sample_size(20);
    for (label, rep) in set.reps() {
        group.bench_with_input(BenchmarkId::from_parameter(label), &rep, |b, rep| {
            b.iter(|| {
                let mut sink = 0usize;
                for &u in &nodes {
                    rep.for_each_neighbor(u, &mut |_| sink += 1);
                }
                sink
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("exists_edge");
    group.sample_size(20);
    for (label, rep) in set.reps() {
        group.bench_with_input(BenchmarkId::from_parameter(label), &rep, |b, rep| {
            b.iter(|| {
                let mut sink = 0usize;
                for w in nodes.windows(2) {
                    sink += usize::from(rep.exists_edge(w[0], w[1]));
                }
                sink
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
