//! Error type shared by the relational engine.

use std::fmt;

/// Errors surfaced by the relational engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Referenced a table that does not exist in the catalog.
    UnknownTable(String),
    /// Referenced a column not present in a table's schema.
    UnknownColumn {
        /// The table whose schema was consulted.
        table: String,
        /// The missing column name.
        column: String,
    },
    /// Tried to register a table under a name already in use.
    DuplicateTable(String),
    /// Appended a row whose arity or types don't match the schema.
    SchemaMismatch(String),
    /// Malformed CSV input.
    Csv(String),
    /// Anything else (query shape errors etc.).
    Invalid(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            DbError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            DbError::DuplicateTable(name) => write!(f, "table `{name}` already exists"),
            DbError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            DbError::Csv(msg) => write!(f, "csv error: {msg}"),
            DbError::Invalid(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Convenience alias.
pub type DbResult<T> = Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            DbError::UnknownTable("t".into()).to_string(),
            "unknown table `t`"
        );
        assert!(DbError::UnknownColumn {
            table: "t".into(),
            column: "c".into()
        }
        .to_string()
        .contains("`c`"));
        assert!(DbError::SchemaMismatch("x".into())
            .to_string()
            .contains("x"));
    }
}
