//! Plan-drift detection end-to-end: each graph's frozen extraction-time
//! plan is re-costed against live statistics after every publish, the
//! verdict is surfaced through `stats()` / the `EXPLAIN` verb, and the
//! frozen plan survives crash recovery.
//!
//! The fixture is the Fig. 1 DBLP instance (8 `AuthorPub` rows over 3
//! publications): the self-join estimate `8·8/3 ≈ 21` sits under the
//! `2·(8+8) = 32` threshold, so the frozen plan keeps the join in one
//! segment. Piling rows onto one publication pushes `|L|·|R|/d` past the
//! threshold, the live min-cost plan flips to cutting the join, and the
//! fingerprint mismatch must flag the frozen plan stale.

use graphgen_reldb::Value;
use graphgen_serve::testutil::{fig1_db, TempDir};
use graphgen_serve::{GraphService, GraphStats, ServiceConfig, TableMutation};

const Q: &str = "Nodes(ID, Name) :- Author(ID, Name). \
                 Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).";

fn graph_stats(service: &GraphService, name: &str) -> GraphStats {
    let (stats, _) = service.stats();
    stats
        .into_iter()
        .find(|s| s.name == name)
        .expect("registered graph")
}

/// Insert `n` fresh memberships all naming publication `pid` (skewing the
/// join-key distribution without adding new distinct keys).
fn skew(service: &GraphService, pid: i64, n: i64) {
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::int(100 + i), Value::int(pid)])
        .collect();
    service
        .apply(&[TableMutation::new("AuthorPub", rows, vec![])])
        .expect("apply skew batch");
}

#[test]
fn skewed_growth_flips_stale_plan_and_reverting_clears_it() {
    let service = GraphService::in_memory(fig1_db());
    service.extract("coauthors", Q).unwrap();
    let s = graph_stats(&service, "coauthors");
    assert_eq!(s.drift, 1.0, "fresh extraction is optimal by definition");
    assert!(!s.stale_plan);

    // 20 extra rows on publication 1: 28·28/3 ≈ 261 > 2·56 — the live
    // min-cost plan now cuts the join the frozen plan kept.
    skew(&service, 1, 20);
    let s = graph_stats(&service, "coauthors");
    assert!(s.stale_plan, "skewed stats must flag the frozen plan");
    assert!(s.drift > 1.0, "frozen plan costs more than live min-cost");

    // Deleting the skew restores the original statistics: the frozen
    // plan is min-cost again and the flag must clear, not latch.
    let rows: Vec<Vec<Value>> = (0..20)
        .map(|i| vec![Value::int(100 + i), Value::int(1)])
        .collect();
    service
        .apply(&[TableMutation::new("AuthorPub", vec![], rows)])
        .unwrap();
    let s = graph_stats(&service, "coauthors");
    assert_eq!(s.drift, 1.0);
    assert!(!s.stale_plan);
}

#[test]
fn churn_that_preserves_the_distribution_never_trips_the_detector() {
    let service = GraphService::in_memory(fig1_db());
    service.extract("coauthors", Q).unwrap();
    // Author rows are scanned by the Nodes rule but sit outside every
    // Edges chain: the batches version the graph without moving any
    // join statistic.
    for a in 0..10 {
        service
            .apply(&[TableMutation::new(
                "Author",
                vec![vec![Value::int(200 + a), Value::str(format!("n{a}"))]],
                vec![],
            )])
            .unwrap();
        let s = graph_stats(&service, "coauthors");
        assert_eq!(s.drift, 1.0, "after batch {a}");
        assert!(!s.stale_plan, "after batch {a}");
    }
    // Balanced AuthorPub churn: insert and delete the same membership.
    for _ in 0..5 {
        service
            .apply(&[TableMutation::new(
                "AuthorPub",
                vec![vec![Value::int(2), Value::int(3)]],
                vec![],
            )])
            .unwrap();
        service
            .apply(&[TableMutation::new(
                "AuthorPub",
                vec![],
                vec![vec![Value::int(2), Value::int(3)]],
            )])
            .unwrap();
    }
    let s = graph_stats(&service, "coauthors");
    assert_eq!(s.drift, 1.0);
    assert!(!s.stale_plan);
}

/// The frozen plan is persisted in the graph snapshot, so a restart
/// re-costs the *original* extraction-time plan — not a re-planned one —
/// against the recovered catalog.
#[test]
fn drift_verdict_survives_recovery() {
    let dir = TempDir::new("drift-recovery");
    {
        let service =
            GraphService::create(dir.path(), fig1_db(), ServiceConfig::default()).unwrap();
        service.extract("coauthors", Q).unwrap();
        skew(&service, 1, 20);
        assert!(graph_stats(&service, "coauthors").stale_plan);
    } // dropped: recovery path only from here
    let service = GraphService::open(dir.path()).unwrap();
    let s = graph_stats(&service, "coauthors");
    assert!(
        s.stale_plan,
        "recovered frozen plan must still read stale against recovered stats"
    );
    assert!(s.drift > 1.0);
    // And the verdict keeps updating on the recovered service.
    let rows: Vec<Vec<Value>> = (0..20)
        .map(|i| vec![Value::int(100 + i), Value::int(1)])
        .collect();
    service
        .apply(&[TableMutation::new("AuthorPub", vec![], rows)])
        .unwrap();
    let s = graph_stats(&service, "coauthors");
    assert!(!s.stale_plan);
    assert_eq!(s.drift, 1.0);
}

/// Compaction folds the WAL into a fresh snapshot; the frozen plan must
/// ride along (a fold must never silently re-freeze the live plan).
#[test]
fn compaction_preserves_the_frozen_plan() {
    let dir = TempDir::new("drift-compact");
    {
        let service =
            GraphService::create(dir.path(), fig1_db(), ServiceConfig::default()).unwrap();
        service.extract("coauthors", Q).unwrap();
        skew(&service, 1, 20);
        service.compact("coauthors").unwrap();
    }
    let service = GraphService::open(dir.path()).unwrap();
    let s = graph_stats(&service, "coauthors");
    assert!(
        s.stale_plan,
        "post-compaction snapshot must carry the original frozen plan, \
         not one re-planned on the skewed statistics"
    );
}
