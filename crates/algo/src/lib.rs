//! `graphgen-algo` — graph algorithms over any representation (§3.4).
//!
//! Everything here is written against the representation-independent
//! [`GraphRep`](graphgen_graph::GraphRep) API, so the same code runs on
//! C-DUP, EXP, DEDUP-1, DEDUP-2, and BITMAP — the core claim of the paper's
//! in-memory layer. Two execution styles are provided, mirroring the paper:
//!
//! * direct Graph-API algorithms ([`mod@bfs`], [`mod@triangles`]) — random access,
//!   single threaded;
//! * the multithreaded **vertex-centric** framework ([`vertex_centric`])
//!   used for Degree and PageRank in the evaluation, with chunked
//!   multi-core execution, supersteps, and vote-to-halt termination
//!   (GAS-style: vertices read their neighbors' previous-superstep state
//!   directly instead of materializing messages).

pub mod bfs;
pub mod clustering;
pub mod concomp;
pub mod condensed;
pub mod degree;
pub mod pagerank;
pub mod triangles;
pub mod vertex_centric;

pub use bfs::bfs;
pub use clustering::{average_clustering, clustering_coefficients};
pub use concomp::connected_components;
pub use condensed::{
    components_seeded, degrees_dedup_free, degrees_merged, pagerank_dedup_free, pagerank_merged,
    pagerank_seeded, CondensedPath, PageRankRun, SeededPageRankConfig,
};
pub use degree::degrees;
pub use pagerank::{pagerank, PageRankConfig};
pub use triangles::triangles;
pub use vertex_centric::{run_vertex_centric, VertexCentricConfig, VertexProgram};
