//! Property tests for the relational engine: hash join vs the nested-loop
//! oracle, DISTINCT semantics, chain-query correctness against a brute-force
//! evaluator, and CSV round-trips.
// Requires the external `proptest` crate (see Cargo.toml); compiled only
// when the `proptest-tests` feature is enabled.
#![cfg(feature = "proptest-tests")]

use graphgen_reldb::exec::{distinct_rows, hash_join, nested_loop_join, scan_project};
use graphgen_reldb::query::{ChainStep, Query};
use graphgen_reldb::{csv, Column, Database, Predicate, RowSet, Schema, Table, Value};
use proptest::prelude::*;

fn rows_strategy() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0i64..12, 0i64..12), 0..40)
}

fn to_rows(pairs: &[(i64, i64)]) -> RowSet {
    RowSet::from_rows(
        2,
        pairs
            .iter()
            .map(|&(a, b)| vec![Value::int(a), Value::int(b)]),
    )
}

fn table_of(pairs: &[(i64, i64)]) -> Table {
    let mut t = Table::new(Schema::new(vec![Column::int("a"), Column::int("b")]));
    for &(a, b) in pairs {
        t.push_row(vec![Value::int(a), Value::int(b)]).unwrap();
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hash_join_equals_nested_loop(l in rows_strategy(), r in rows_strategy()) {
        let lrows = to_rows(&l);
        let rrows = to_rows(&r);
        for (lk, rk) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            let n = nested_loop_join(&lrows, lk, &rrows, rk);
            for threads in [1usize, 2, 8] {
                let h = hash_join(&lrows, lk, &rrows, rk, threads);
                prop_assert_eq!(&h, &n, "keys ({},{}) at {} threads", lk, rk, threads);
            }
        }
    }

    #[test]
    fn distinct_is_idempotent_and_set_like(pairs in rows_strategy()) {
        let rows = to_rows(&pairs);
        let once = distinct_rows(rows.clone(), 1);
        let twice = distinct_rows(once.clone(), 1);
        prop_assert_eq!(&once, &twice);
        for threads in [2usize, 8] {
            prop_assert_eq!(&distinct_rows(rows.clone(), threads), &once);
        }
        // Same set as a HashSet of the input.
        let set: std::collections::HashSet<Vec<Value>> = rows.to_vecs().into_iter().collect();
        prop_assert_eq!(once.num_rows(), set.len());
        for row in once.iter() {
            prop_assert!(set.contains(row));
        }
    }

    #[test]
    fn scan_project_respects_predicate(pairs in rows_strategy(), bound in 0i64..12) {
        let t = table_of(&pairs);
        let out = scan_project(&t, &Predicate::Lt(0, Value::int(bound)), &[0], 1);
        let expected = pairs.iter().filter(|&&(a, _)| a < bound).count();
        prop_assert_eq!(out.num_rows(), expected);
        for row in out.iter() {
            prop_assert!(row[0].as_int().unwrap() < bound);
        }
        for threads in [2usize, 8] {
            prop_assert_eq!(
                &scan_project(&t, &Predicate::Lt(0, Value::int(bound)), &[0], threads),
                &out
            );
        }
    }

    #[test]
    fn chain_query_matches_bruteforce(pairs in rows_strategy()) {
        // res(X, Y) :- R(X, g), R(Y, g): co-membership, 2-step chain.
        let mut db = Database::new();
        db.register("R", table_of(&pairs)).unwrap();
        let q = Query {
            steps: vec![
                ChainStep { table: "R".into(), pred: Predicate::True, in_col: 0, out_col: 1 },
                ChainStep { table: "R".into(), pred: Predicate::True, in_col: 1, out_col: 0 },
            ],
            distinct: true,
        };
        let mut got = q.run(&db).unwrap();
        got.sort();
        let mut expected: Vec<(Value, Value)> = Vec::new();
        for &(x, g1) in &pairs {
            for &(y, g2) in &pairs {
                if g1 == g2 {
                    expected.push((Value::int(x), Value::int(y)));
                }
            }
        }
        expected.sort();
        expected.dedup();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn csv_roundtrip(pairs in rows_strategy()) {
        let t = table_of(&pairs);
        let text = csv::to_csv(&t);
        let back = csv::parse_csv(&text, Schema::new(vec![Column::int("a"), Column::int("b")])).unwrap();
        prop_assert_eq!(back.num_rows(), t.num_rows());
        for r in 0..t.num_rows() {
            prop_assert_eq!(back.row(r), t.row(r));
        }
    }

    #[test]
    fn csv_roundtrip_with_strings(names in proptest::collection::vec("[a-z,\"x ]{0,8}", 0..20)) {
        let mut t = Table::new(Schema::new(vec![Column::str("name")]));
        for n in &names {
            t.push_row(vec![Value::str(n.as_str())]).unwrap();
        }
        let text = csv::to_csv(&t);
        let back = csv::parse_csv(&text, Schema::new(vec![Column::str("name")])).unwrap();
        prop_assert_eq!(back.num_rows(), t.num_rows());
        for (r, n) in names.iter().enumerate() {
            prop_assert_eq!(back.cell(r, 0).as_str(), Some(n.as_str()));
        }
    }

    #[test]
    fn catalog_distinct_counts_are_exact(pairs in rows_strategy()) {
        let mut db = Database::new();
        db.register("R", table_of(&pairs)).unwrap();
        let stats = db.column_stats_by_name("R", "b").unwrap();
        let truth: std::collections::HashSet<i64> = pairs.iter().map(|&(_, b)| b).collect();
        prop_assert_eq!(stats.n_distinct, truth.len());
        prop_assert_eq!(stats.row_count, pairs.len());
    }
}
