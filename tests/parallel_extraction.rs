//! End-to-end determinism of the parallel extraction pipeline: for the
//! Appendix C.2 workloads (`datagen::large`), extraction at 2/4/8 threads
//! must produce a graph byte-identical to the 1-thread run — same node ids,
//! same edge lists — with preprocessing both off and on.

use graphgen::core::{GraphGen, GraphGenConfig, GraphGenConfigBuilder};
use graphgen::datagen::large::{
    layered_database, single_layer_database, LayeredConfig, SingleLayerConfig,
};
use graphgen::graph::{expand_to_edge_list, GraphRep};
use graphgen::reldb::Database;

fn base(preprocess: bool) -> GraphGenConfigBuilder {
    GraphGenConfig::builder()
        .large_output_factor(2.0)
        .preprocess(preprocess)
        .auto_expand_threshold(None)
}

fn assert_thread_invariant(db: &Database, query: &str, label: &str) {
    for preprocess in [false, true] {
        let serial = GraphGen::with_config(db, base(preprocess).threads(1).build())
            .extract(query)
            .expect("serial extraction");
        let truth = expand_to_edge_list(&serial);
        for threads in [2usize, 4, 8] {
            let parallel = GraphGen::with_config(db, base(preprocess).threads(threads).build())
                .extract(query)
                .expect("parallel extraction");
            assert_eq!(
                expand_to_edge_list(&parallel),
                truth,
                "{label}: preprocess={preprocess} diverged at {threads} threads"
            );
            assert_eq!(
                parallel.graph().stored_edge_count(),
                serial.graph().stored_edge_count(),
                "{label}: stored representation differs at {threads} threads"
            );
        }
    }
}

#[test]
fn single_layer_workload_is_thread_invariant() {
    // ~6k membership rows: crosses the operators' serial-fallback threshold
    // so the morsel/partition paths genuinely run.
    let (db, query) = single_layer_database(SingleLayerConfig {
        rows: 6_000,
        selectivity: 0.1,
        seed: 42,
    });
    assert_thread_invariant(&db, &query, "single-layer");
}

#[test]
fn layered_workload_is_thread_invariant() {
    // Rows stay well above the operators' per-thread work floor so the
    // morsel/partition code paths get multiple workers; selectivities are
    // kept high so the expanded oracle comparison stays small.
    let (db, query) = layered_database(LayeredConfig {
        rows_a: 3_000,
        rows_b: 3_000,
        outer_selectivity: 0.1,
        inner_selectivity: 0.25,
        seed: 43,
    });
    assert_thread_invariant(&db, &query, "layered");
}

#[test]
fn full_extraction_is_thread_invariant() {
    let (db, query) = single_layer_database(SingleLayerConfig {
        rows: 3_000,
        selectivity: 0.2,
        seed: 44,
    });
    let serial = GraphGen::with_config(&db, base(false).threads(1).build())
        .extract_full(&query)
        .expect("serial full extraction");
    for threads in [4usize, 8] {
        let parallel = GraphGen::with_config(&db, base(false).threads(threads).build())
            .extract_full(&query)
            .expect("parallel full extraction");
        assert_eq!(
            expand_to_edge_list(&parallel),
            expand_to_edge_list(&serial),
            "full extraction diverged at {threads} threads"
        );
    }
}
