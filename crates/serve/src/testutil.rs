//! Test support: a std-only temporary directory and the shared demo
//! database fixture.
//!
//! Public so the crate's integration tests (and the `--demo`/`--smoke`
//! modes of the `graphgen-serve` binary) can share it; not part of the
//! serving API.

use graphgen_reldb::{Column, Database, Schema, Table, Value};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The paper's Fig. 1 DBLP toy instance: five authors, three publications,
/// eight `AuthorPub` memberships — the single source for the demo server,
/// the smoke test, and the unit tests.
pub fn fig1_db() -> Database {
    let mut author = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
    for a in 1..=5 {
        author
            .push_row(vec![Value::int(a), Value::str(format!("a{a}"))])
            .expect("fixture row");
    }
    let mut ap = Table::new(Schema::new(vec![Column::int("aid"), Column::int("pid")]));
    for (a, p) in [
        (1, 1),
        (2, 1),
        (4, 1),
        (1, 2),
        (4, 2),
        (3, 3),
        (4, 3),
        (5, 3),
    ] {
        ap.push_row(vec![Value::int(a), Value::int(p)])
            .expect("fixture row");
    }
    let mut db = Database::new();
    db.register("Author", author).expect("fixture table");
    db.register("AuthorPub", ap).expect("fixture table");
    db
}

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under the system temp dir, removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create `tempdir/graphgen-<label>-<pid>-<n>`.
    pub fn new(label: &str) -> Self {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("graphgen-{label}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        Self { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
