//! Per-operator allocation-region labels.
//!
//! The counting allocator in `graphgen-bench` attributes every allocation
//! to the region the allocating thread is currently in, so bench binaries
//! can report *which operator* (scan / join build / join probe / DISTINCT)
//! allocated how much — the breakdown that makes the next allocation
//! hotspot attributable instead of a single opaque total.
//!
//! The label lives in a `const`-initialized thread-local `Cell`, so reading
//! it never allocates — a hard requirement, since the global allocator
//! itself reads it on every allocation. Operators set it with a scoped
//! [`enter`] guard; worker threads spawned inside a parallel operator set
//! it again inside their closures (thread-locals do not inherit).

use std::cell::Cell;

/// The regions an allocation can be attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Region {
    /// Anything outside a labeled operator.
    General = 0,
    /// Filtered scan + projection (`scan_project`).
    Scan = 1,
    /// Hash-join index build.
    Build = 2,
    /// Hash-join probe + output emission.
    Probe = 3,
    /// Duplicate elimination (`distinct_rows`).
    Distinct = 4,
    /// Representation construction + preprocessing (`build_rep`).
    BuildRep = 5,
    /// Writer pre-validation of a delta batch.
    Validate = 6,
    /// WAL record encode + append (+ optional fsync).
    WalAppend = 7,
    /// In-place graph patch from a delta.
    Patch = 8,
    /// Reader-visible snapshot construction + publication.
    Publish = 9,
    /// WAL replay / snapshot load on startup.
    Recovery = 10,
    /// Analytics computation (pagerank / components workers).
    Analyze = 11,
}

/// Number of distinct [`Region`] values (array-sizing constant for
/// per-region counters).
pub const REGION_COUNT: usize = 12;

/// All regions, in tag order.
pub const ALL_REGIONS: [Region; REGION_COUNT] = [
    Region::General,
    Region::Scan,
    Region::Build,
    Region::Probe,
    Region::Distinct,
    Region::BuildRep,
    Region::Validate,
    Region::WalAppend,
    Region::Patch,
    Region::Publish,
    Region::Recovery,
    Region::Analyze,
];

impl Region {
    /// Stable display label.
    pub fn label(self) -> &'static str {
        match self {
            Region::General => "general",
            Region::Scan => "scan",
            Region::Build => "build",
            Region::Probe => "probe",
            Region::Distinct => "distinct",
            Region::BuildRep => "build_rep",
            Region::Validate => "validate",
            Region::WalAppend => "wal_append",
            Region::Patch => "patch",
            Region::Publish => "publish",
            Region::Recovery => "recovery",
            Region::Analyze => "analyze",
        }
    }

    fn from_u8(v: u8) -> Region {
        match v {
            1 => Region::Scan,
            2 => Region::Build,
            3 => Region::Probe,
            4 => Region::Distinct,
            5 => Region::BuildRep,
            6 => Region::Validate,
            7 => Region::WalAppend,
            8 => Region::Patch,
            9 => Region::Publish,
            10 => Region::Recovery,
            11 => Region::Analyze,
            _ => Region::General,
        }
    }
}

thread_local! {
    static CURRENT: Cell<u8> = const { Cell::new(0) };
}

/// The region the current thread is in. Never allocates; returns
/// [`Region::General`] during thread teardown (after TLS destruction).
#[inline]
pub fn current() -> Region {
    CURRENT
        .try_with(|c| Region::from_u8(c.get()))
        .unwrap_or(Region::General)
}

/// Enter `region` on this thread until the returned guard drops (the
/// previous region is restored — regions nest).
pub fn enter(region: Region) -> RegionGuard {
    let prev = CURRENT
        .try_with(|c| c.replace(region as u8))
        .unwrap_or(Region::General as u8);
    RegionGuard { prev }
}

/// Restores the previous region on drop. See [`enter`].
#[must_use = "dropping the guard immediately exits the region"]
pub struct RegionGuard {
    prev: u8,
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        let _ = CURRENT.try_with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_general() {
        assert_eq!(current(), Region::General);
    }

    #[test]
    fn enter_nests_and_restores() {
        assert_eq!(current(), Region::General);
        {
            let _a = enter(Region::Scan);
            assert_eq!(current(), Region::Scan);
            {
                let _b = enter(Region::Probe);
                assert_eq!(current(), Region::Probe);
            }
            assert_eq!(current(), Region::Scan);
        }
        assert_eq!(current(), Region::General);
    }

    #[test]
    fn regions_are_per_thread() {
        let _outer = enter(Region::Distinct);
        std::thread::scope(|s| {
            s.spawn(|| {
                assert_eq!(current(), Region::General);
                let _g = enter(Region::Build);
                assert_eq!(current(), Region::Build);
            });
        });
        assert_eq!(current(), Region::Distinct);
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = ALL_REGIONS.iter().map(|r| r.label()).collect();
        assert_eq!(
            labels,
            vec![
                "general",
                "scan",
                "build",
                "probe",
                "distinct",
                "build_rep",
                "validate",
                "wal_append",
                "patch",
                "publish",
                "recovery",
                "analyze"
            ]
        );
    }
}
