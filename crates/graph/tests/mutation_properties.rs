//! Property tests for the mutation operations of the Graph API: the logical
//! edge set must respond to add/delete operations exactly like a reference
//! set-of-pairs model, on every representation.
// Requires the external `proptest` crate (see Cargo.toml); compiled only
// when the `proptest-tests` feature is enabled.
#![cfg(feature = "proptest-tests")]

use graphgen_graph::{
    expand_to_edge_list, CondensedBuilder, CondensedGraph, ExpandedGraph, GraphRep, RealId,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
enum Op {
    AddEdge(u32, u32),
    DeleteEdge(u32, u32),
    DeleteVertex(u32),
    Compact,
}

fn ops(n: u32) -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (0..n, 0..n).prop_map(|(a, b)| Op::AddEdge(a, b)),
        (0..n, 0..n).prop_map(|(a, b)| Op::DeleteEdge(a, b)),
        (0..n).prop_map(Op::DeleteVertex),
        Just(Op::Compact),
    ];
    proptest::collection::vec(op, 0..24)
}

fn sets(n: u32) -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0..n, 2..6), 0..8)
}

fn build_cdup(n: u32, cliques: &[Vec<u32>]) -> CondensedGraph {
    let mut b = CondensedBuilder::new(n as usize);
    for c in cliques {
        let mut members: Vec<RealId> = c.iter().map(|&i| RealId(i)).collect();
        members.sort();
        members.dedup();
        if members.len() >= 2 {
            b.clique(&members);
        }
    }
    b.build()
}

/// Reference model: a set of directed pairs + a liveness set.
#[derive(Debug, Clone)]
struct Model {
    edges: BTreeSet<(u32, u32)>,
    dead: BTreeSet<u32>,
}

impl Model {
    fn apply(&mut self, op: &Op) {
        match *op {
            Op::AddEdge(a, b) => {
                if a != b && !self.dead.contains(&a) && !self.dead.contains(&b) {
                    self.edges.insert((a, b));
                }
            }
            Op::DeleteEdge(a, b) => {
                self.edges.remove(&(a, b));
            }
            Op::DeleteVertex(v) => {
                self.dead.insert(v);
            }
            Op::Compact => {}
        }
    }

    fn visible_edges(&self) -> Vec<(u32, u32)> {
        self.edges
            .iter()
            .copied()
            .filter(|(a, b)| !self.dead.contains(a) && !self.dead.contains(b))
            .collect()
    }
}

fn apply_graph<G: GraphRep>(g: &mut G, op: &Op) {
    match *op {
        Op::AddEdge(a, b) => {
            // Mirror the model's liveness rule: mutating dead vertices is
            // left unspecified by the API, so skip.
            if g.is_alive(RealId(a)) && g.is_alive(RealId(b)) {
                g.add_edge(RealId(a), RealId(b));
            }
        }
        Op::DeleteEdge(a, b) => g.delete_edge(RealId(a), RealId(b)),
        Op::DeleteVertex(v) => g.delete_vertex(RealId(v)),
        Op::Compact => g.compact(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cdup_mutations_match_reference_model(
        cliques in sets(10),
        operations in ops(10),
    ) {
        let mut g = build_cdup(10, &cliques);
        let mut model = Model {
            edges: expand_to_edge_list(&g).into_iter().collect(),
            dead: BTreeSet::new(),
        };
        for op in &operations {
            // Deleting a logical edge in the model while the vertex is dead
            // diverges from condensed behavior (hidden edges reappear on
            // resurrection — which the API doesn't support); our model
            // treats dead vertices' edges as *gone* only if deleted; the
            // graph hides them. Align by comparing only visible edges.
            apply_graph(&mut g, op);
            // The model must first drop logical edges of dead vertices when
            // a delete_edge happens "through" them; delete on hidden pairs
            // is a no-op in both.
            let before_dead = model.dead.clone();
            model.apply(op);
            // delete_edge on a hidden (dead-endpoint) pair: graph keeps the
            // structure hidden; model removed it. Re-add for parity.
            if let Op::DeleteEdge(a, b) = *op {
                if before_dead.contains(&a) || before_dead.contains(&b) {
                    // undefined corner: skip comparison by restoring nothing;
                    // both hide the pair anyway.
                }
                let _ = (a, b);
            }
            prop_assert_eq!(expand_to_edge_list(&g), model.visible_edges());
        }
    }

    #[test]
    fn exp_mutations_match_reference_model(
        cliques in sets(10),
        operations in ops(10),
    ) {
        let cdup = build_cdup(10, &cliques);
        let mut g = ExpandedGraph::from_rep(&cdup);
        let mut model = Model {
            edges: expand_to_edge_list(&g).into_iter().collect(),
            dead: BTreeSet::new(),
        };
        for op in &operations {
            apply_graph(&mut g, op);
            model.apply(op);
            prop_assert_eq!(expand_to_edge_list(&g), model.visible_edges());
        }
    }

    #[test]
    fn degree_equals_neighbor_count_everywhere(cliques in sets(12)) {
        let g = build_cdup(12, &cliques);
        for u in g.vertices() {
            prop_assert_eq!(g.degree(u), g.neighbors(u).len());
        }
    }

    #[test]
    fn exists_edge_consistent_with_neighbors(cliques in sets(12)) {
        let g = build_cdup(12, &cliques);
        for u in g.vertices() {
            let nbrs: BTreeSet<u32> = g.neighbors(u).iter().map(|r| r.0).collect();
            for v in 0..12u32 {
                prop_assert_eq!(
                    g.exists_edge(u, RealId(v)),
                    nbrs.contains(&v),
                    "u={} v={}", u.0, v
                );
            }
        }
    }
}
