//! DEDUP-2: the single-layer symmetric optimization (§4.3, Appendix B).
//!
//! For symmetric single-layer condensed graphs (`u → v` iff `v → u`, no
//! virtual–virtual *directed* chains), the source/target split is redundant:
//! a virtual node is just a set of mutually connected real members. DEDUP-2
//! additionally allows **undirected edges between virtual nodes**: a real
//! node `u` is connected to every member of its own virtual nodes, and to
//! every member of virtual nodes one hop away from them. This can encode
//! large overlapping cliques far more compactly than DEDUP-1 (Fig. 6).
//!
//! The representation must itself be duplicate-free: for any pair `(u, w)`
//! at most one "witness" — either one shared virtual node, or one virtual
//! edge `(V, W)` with `u ∈ V, w ∈ W` — may connect them. That implies
//! (Appendix B): any two virtual nodes overlap in at most one real node, the
//! virtual neighbors of a virtual node are pairwise disjoint, no two virtual
//! nodes sharing a member are adjacent, and no member of `V` appears in a
//! virtual neighbor of `V`.
//!
//! DEDUP-2 is inherently **undirected**: `add_edge`/`delete_edge` affect
//! both directions (the paper uses it only for symmetric graphs).

use crate::api::{GraphRep, RepKind};
use crate::ids::RealId;

/// The DEDUP-2 graph.
#[derive(Debug, Clone, Default)]
pub struct Dedup2Graph {
    /// For each real node, the sorted virtual nodes it belongs to.
    pub(crate) memberships: Vec<Vec<u32>>,
    /// For each virtual node, its sorted real members.
    pub(crate) members: Vec<Vec<u32>>,
    /// Undirected virtual–virtual adjacency (stored in both directions,
    /// sorted).
    pub(crate) vv: Vec<Vec<u32>>,
    /// Direct (undirected) real–real edges, stored in both directions.
    /// The paper models these as singleton virtual nodes; a side list is
    /// equivalent and cheaper.
    pub(crate) direct: Vec<Vec<u32>>,
    pub(crate) alive: Vec<bool>,
    pub(crate) n_alive: usize,
}

impl Dedup2Graph {
    /// An empty DEDUP-2 graph over `n` real nodes.
    pub fn new(n: usize) -> Self {
        Self {
            memberships: vec![Vec::new(); n],
            members: Vec::new(),
            vv: Vec::new(),
            direct: vec![Vec::new(); n],
            alive: vec![true; n],
            n_alive: n,
        }
    }

    /// Create a virtual node with the given (deduplicated) members.
    pub fn add_virtual(&mut self, mut real_members: Vec<u32>) -> u32 {
        real_members.sort_unstable();
        real_members.dedup();
        let id = self.members.len() as u32;
        for &m in &real_members {
            let list = &mut self.memberships[m as usize];
            if let Err(pos) = list.binary_search(&id) {
                list.insert(pos, id);
            }
        }
        self.members.push(real_members);
        self.vv.push(Vec::new());
        id
    }

    /// Add an undirected virtual–virtual edge.
    pub fn add_virtual_edge(&mut self, v: u32, w: u32) {
        debug_assert_ne!(v, w);
        if let Err(pos) = self.vv[v as usize].binary_search(&w) {
            self.vv[v as usize].insert(pos, w);
        }
        if let Err(pos) = self.vv[w as usize].binary_search(&v) {
            self.vv[w as usize].insert(pos, v);
        }
    }

    /// Remove a real node from a virtual node.
    pub fn remove_member(&mut self, v: u32, u: u32) {
        if let Ok(pos) = self.members[v as usize].binary_search(&u) {
            self.members[v as usize].remove(pos);
        }
        if let Ok(pos) = self.memberships[u as usize].binary_search(&v) {
            self.memberships[u as usize].remove(pos);
        }
    }

    /// Members of a virtual node.
    pub fn members(&self, v: u32) -> &[u32] {
        &self.members[v as usize]
    }

    /// Virtual neighbors of a virtual node.
    pub fn virtual_neighbors(&self, v: u32) -> &[u32] {
        &self.vv[v as usize]
    }

    /// Virtual nodes this real node belongs to.
    pub fn memberships_of(&self, u: RealId) -> &[u32] {
        &self.memberships[u.0 as usize]
    }

    /// Number of virtual nodes (including emptied ones until compaction).
    pub fn num_virtual(&self) -> usize {
        self.members.iter().filter(|m| !m.is_empty()).count()
    }

    /// Add an undirected direct edge.
    fn add_direct(&mut self, u: u32, v: u32) {
        if let Err(pos) = self.direct[u as usize].binary_search(&v) {
            self.direct[u as usize].insert(pos, v);
        }
        if let Err(pos) = self.direct[v as usize].binary_search(&u) {
            self.direct[v as usize].insert(pos, u);
        }
    }

    fn remove_direct(&mut self, u: u32, v: u32) -> bool {
        let mut removed = false;
        if let Ok(pos) = self.direct[u as usize].binary_search(&v) {
            self.direct[u as usize].remove(pos);
            removed = true;
        }
        if let Ok(pos) = self.direct[v as usize].binary_search(&u) {
            self.direct[v as usize].remove(pos);
        }
        removed
    }

    /// Visit the raw (unfiltered, possibly duplicated if invariants are
    /// broken) neighborhood. Used by the validator.
    pub(crate) fn for_each_neighbor_raw(&self, u: RealId, f: &mut dyn FnMut(u32)) {
        for &v in &self.direct[u.0 as usize] {
            f(v);
        }
        for &vn in &self.memberships[u.0 as usize] {
            for &m in &self.members[vn as usize] {
                if m != u.0 {
                    f(m);
                }
            }
            for &wn in &self.vv[vn as usize] {
                for &m in &self.members[wn as usize] {
                    if m != u.0 {
                        f(m);
                    }
                }
            }
        }
    }
}

impl GraphRep for Dedup2Graph {
    fn kind(&self) -> RepKind {
        RepKind::Dedup2
    }

    fn num_real_slots(&self) -> usize {
        self.memberships.len()
    }

    fn is_alive(&self, u: RealId) -> bool {
        self.alive[u.0 as usize]
    }

    fn num_vertices(&self) -> usize {
        self.n_alive
    }

    fn for_each_neighbor(&self, u: RealId, f: &mut dyn FnMut(RealId)) {
        // The "extra layer of indirection" §6.3 mentions: own members, then
        // members one virtual hop away. No hashset — the invariants make
        // every neighbor appear exactly once.
        self.for_each_neighbor_raw(u, &mut |v| {
            if self.alive[v as usize] {
                f(RealId(v));
            }
        });
    }

    fn exists_edge(&self, u: RealId, v: RealId) -> bool {
        if u == v || !self.alive[u.0 as usize] || !self.alive[v.0 as usize] {
            return false;
        }
        if self.direct[u.0 as usize].binary_search(&v.0).is_ok() {
            return true;
        }
        for &vn in &self.memberships[u.0 as usize] {
            if self.members[vn as usize].binary_search(&v.0).is_ok() {
                return true;
            }
            for &wn in &self.vv[vn as usize] {
                if self.members[wn as usize].binary_search(&v.0).is_ok() {
                    return true;
                }
            }
        }
        false
    }

    fn add_vertex(&mut self) -> RealId {
        self.memberships.push(Vec::new());
        self.direct.push(Vec::new());
        self.alive.push(true);
        self.n_alive += 1;
        RealId(self.memberships.len() as u32 - 1)
    }

    fn delete_vertex(&mut self, u: RealId) {
        // Constant-time logical removal (the §6.3 microbenchmark point).
        if std::mem::replace(&mut self.alive[u.0 as usize], false) {
            self.n_alive -= 1;
        }
    }

    fn revive_vertex(&mut self, u: RealId) {
        if !std::mem::replace(&mut self.alive[u.0 as usize], true) {
            self.n_alive += 1;
        }
    }

    fn compact(&mut self) {
        let alive = &self.alive;
        for (i, list) in self.direct.iter_mut().enumerate() {
            if !alive[i] {
                list.clear();
            } else {
                list.retain(|&v| alive[v as usize]);
            }
        }
        let dead: Vec<u32> = (0..self.memberships.len() as u32)
            .filter(|&u| !self.alive[u as usize])
            .collect();
        for u in dead {
            for vn in std::mem::take(&mut self.memberships[u as usize]) {
                if let Ok(pos) = self.members[vn as usize].binary_search(&u) {
                    self.members[vn as usize].remove(pos);
                }
            }
        }
    }

    fn add_edge(&mut self, u: RealId, v: RealId) {
        // Undirected: one witness added.
        if u != v && !self.exists_edge(u, v) {
            self.add_direct(u.0, v.0);
        }
    }

    fn delete_edge(&mut self, u: RealId, v: RealId) {
        if self.remove_direct(u.0, v.0) {
            return;
        }
        // Find the (unique, by invariant) witness through u's memberships.
        let memberships = self.memberships[u.0 as usize].clone();
        for vn in memberships {
            let shared = self.members[vn as usize].binary_search(&v.0).is_ok();
            let via_vv = self.vv[vn as usize]
                .iter()
                .any(|&wn| self.members[wn as usize].binary_search(&v.0).is_ok());
            if shared || via_vv {
                // Detach u from vn; everything u reached through vn except v
                // must be re-added as direct edges.
                let mut lost: Vec<u32> = self.members[vn as usize]
                    .iter()
                    .copied()
                    .filter(|&m| m != u.0)
                    .collect();
                for &wn in &self.vv[vn as usize] {
                    lost.extend(self.members[wn as usize].iter().copied());
                }
                self.remove_member(vn, u.0);
                for w in lost {
                    if w != v.0 && w != u.0 && !self.exists_edge(u, RealId(w)) {
                        self.add_direct(u.0, w);
                    }
                }
                return;
            }
        }
    }

    fn stored_edge_count(&self) -> u64 {
        // Membership edges + vv edges (counted once: undirected) + direct
        // edges (counted once).
        let membership: u64 = self.members.iter().map(|m| m.len() as u64).sum();
        let vv: u64 = self.vv.iter().map(|l| l.len() as u64).sum::<u64>() / 2;
        let direct: u64 = self.direct.iter().map(|l| l.len() as u64).sum::<u64>() / 2;
        membership + vv + direct
    }

    fn stored_node_count(&self) -> usize {
        self.n_alive + self.num_virtual()
    }

    fn heap_bytes(&self) -> usize {
        let lists = |ls: &Vec<Vec<u32>>| {
            ls.capacity() * std::mem::size_of::<Vec<u32>>()
                + ls.iter().map(|l| l.capacity() * 4).sum::<usize>()
        };
        lists(&self.memberships)
            + lists(&self.members)
            + lists(&self.vv)
            + lists(&self.direct)
            + self.alive.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 6c shape: W1 = {u1,u2,u3}, W2 = {a,b,c}, W3 = {d,e,f},
    /// with W1—W2 and W1—W3 virtual edges.
    /// ids: u1,u2,u3 = 0,1,2; a,b,c = 3,4,5; d,e,f = 6,7,8.
    fn fig6c() -> Dedup2Graph {
        let mut g = Dedup2Graph::new(9);
        let w1 = g.add_virtual(vec![0, 1, 2]);
        let w2 = g.add_virtual(vec![3, 4, 5]);
        let w3 = g.add_virtual(vec![6, 7, 8]);
        g.add_virtual_edge(w1, w2);
        g.add_virtual_edge(w1, w3);
        g
    }

    #[test]
    fn neighbors_follow_one_hop_virtual_edges() {
        let g = fig6c();
        // a (=3) is connected to b,c through W2 and u1,u2,u3 through W2—W1,
        // but NOT to d,e,f (W3 is not adjacent to W2).
        let mut n = g
            .neighbors(RealId(3))
            .iter()
            .map(|r| r.0)
            .collect::<Vec<_>>();
        n.sort_unstable();
        assert_eq!(n, vec![0, 1, 2, 4, 5]);
        // u1 (=0) reaches everyone: u2,u3 via W1; a,b,c via W1—W2; d,e,f via W1—W3.
        let mut n0 = g
            .neighbors(RealId(0))
            .iter()
            .map(|r| r.0)
            .collect::<Vec<_>>();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn invariants_hold_on_fig6c() {
        let g = fig6c();
        assert!(crate::validate::validate_dedup2(&g).is_ok());
    }

    #[test]
    fn exists_edge_matches_neighbors() {
        let g = fig6c();
        assert!(g.exists_edge(RealId(3), RealId(0)));
        assert!(!g.exists_edge(RealId(3), RealId(6)));
        assert!(g.exists_edge(RealId(0), RealId(6)));
    }

    #[test]
    fn stored_edge_count_matches_fig6() {
        // Fig. 6c reports 11 undirected edges for the full example
        // (9 membership + 2 virtual-virtual).
        let g = fig6c();
        assert_eq!(g.stored_edge_count(), 11);
    }

    #[test]
    fn add_and_delete_direct_edge() {
        let mut g = fig6c();
        g.add_edge(RealId(3), RealId(6));
        assert!(g.exists_edge(RealId(3), RealId(6)));
        assert!(g.exists_edge(RealId(6), RealId(3))); // undirected
        assert!(crate::validate::validate_dedup2(&g).is_ok());
        g.delete_edge(RealId(3), RealId(6));
        assert!(!g.exists_edge(RealId(3), RealId(6)));
    }

    #[test]
    fn delete_structural_edge_preserves_rest() {
        let mut g = fig6c();
        // delete a—u1 (witness: W2—W1); a must keep b,c,u2,u3.
        g.delete_edge(RealId(3), RealId(0));
        assert!(!g.exists_edge(RealId(3), RealId(0)));
        for other in [1u32, 2, 4, 5] {
            assert!(
                g.exists_edge(RealId(3), RealId(other)),
                "lost edge to {other}"
            );
        }
        // b and c keep their connections to u1.
        assert!(g.exists_edge(RealId(4), RealId(0)));
        assert!(crate::validate::validate_dedup2(&g).is_ok());
    }

    #[test]
    fn delete_vertex_constant_and_lazy() {
        let mut g = fig6c();
        g.delete_vertex(RealId(0));
        assert!(!g.neighbors(RealId(3)).contains(&RealId(0)));
        g.compact();
        assert_eq!(g.members(0), &[1, 2]);
    }

    #[test]
    fn add_edge_no_duplicate_witness() {
        let mut g = fig6c();
        // already connected via virtual structure: no direct edge added
        g.add_edge(RealId(0), RealId(1));
        assert_eq!(
            g.neighbors(RealId(0)).iter().filter(|r| r.0 == 1).count(),
            1
        );
        assert!(crate::validate::validate_dedup2(&g).is_ok());
    }
}
