//! `graphgen-giraph` — the Apache Giraph port prototype (§6.4).
//!
//! Unlike `graphgen-algo`'s shared-memory GAS framework, this crate models
//! a *message-passing* BSP system: vertices only communicate by sending
//! messages delivered at the next superstep, and we count every message —
//! the quantity the paper's Table 4 experiments hinge on.
//!
//! The condensed representations make **virtual nodes first-class BSP
//! vertices that aggregate messages**: a PageRank iteration becomes two
//! supersteps (real→virtual, virtual→real) with one message per stored
//! edge, i.e. `2·#edges` messages per logical iteration, instead of one
//! message per *expanded* pair. Degree and PageRank need the deduplicated
//! structure (DEDUP-1's structural guarantee, or BITMAP's per-source
//! masks); Connected Components is duplicate-insensitive and also runs on
//! raw C-DUP.
//!
//! Every run returns [`RunStats`]: supersteps, total messages, the
//! representation's heap bytes plus peak message-buffer bytes, and wall
//! time.

use graphgen_common::FxHashMap;
use graphgen_graph::{
    BitmapGraph, CondensedGraph, Dedup1Graph, ExpandedGraph, GraphRep, RealId, VirtId,
};
use std::time::Instant;

/// The representations the Giraph port supports (Table 4's columns, plus
/// C-DUP for the duplicate-insensitive kernels).
#[derive(Clone, Copy)]
pub enum GiraphRep<'a> {
    /// Fully expanded.
    Exp(&'a ExpandedGraph),
    /// Structurally deduplicated condensed.
    Dedup1(&'a Dedup1Graph),
    /// Bitmap-masked condensed.
    Bitmap(&'a BitmapGraph),
    /// Raw condensed with duplicates (Connected Components only).
    CDup(&'a CondensedGraph),
}

impl<'a> GiraphRep<'a> {
    /// Label for experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            GiraphRep::Exp(_) => "EXP",
            GiraphRep::Dedup1(_) => "DEDUP1",
            GiraphRep::Bitmap(_) => "BMP",
            GiraphRep::CDup(_) => "C-DUP",
        }
    }

    fn graph(&self) -> &dyn GraphRep {
        match self {
            GiraphRep::Exp(g) => *g,
            GiraphRep::Dedup1(g) => *g,
            GiraphRep::Bitmap(g) => *g,
            GiraphRep::CDup(g) => *g,
        }
    }

    /// The condensed core, if condensed.
    fn core(&self) -> Option<&'a CondensedGraph> {
        match self {
            GiraphRep::Exp(_) => None,
            GiraphRep::Dedup1(g) => Some(g.as_condensed()),
            GiraphRep::Bitmap(g) => Some(g.core()),
            GiraphRep::CDup(g) => Some(g),
        }
    }

    /// Representation heap bytes (Table 4's memory column baseline).
    pub fn heap_bytes(&self) -> usize {
        self.graph().heap_bytes()
    }
}

/// Statistics of one Giraph-style run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// BSP supersteps executed.
    pub supersteps: usize,
    /// Total messages sent.
    pub messages: u64,
    /// Representation bytes + peak message-buffer bytes.
    pub memory_bytes: usize,
    /// Wall time.
    pub millis: u128,
}

/// Out-degree of every real node, computed Giraph-style. On EXP this is a
/// local operation (0 messages); condensed representations need one
/// request/response round through the virtual nodes (2 messages per stored
/// membership edge).
pub fn degree(rep: GiraphRep<'_>) -> (Vec<u32>, RunStats) {
    let start = Instant::now();
    let mut stats = RunStats::default();
    let g = rep.graph();
    let n = g.num_real_slots();
    let mut out = vec![0u32; n];
    match rep {
        GiraphRep::Exp(exp) => {
            stats.supersteps = 1;
            for u in exp.vertices() {
                out[u.0 as usize] = exp.degree(u) as u32;
            }
            stats.memory_bytes = rep.heap_bytes();
        }
        _ => {
            // Superstep 1: each real node asks its virtual neighbors;
            // superstep 2: each virtual node replies with the per-source
            // masked/deduplicated count. Duplicate neighbors across virtual
            // nodes are resolved per the representation's guarantee.
            stats.supersteps = 2;
            let core = rep.core().expect("condensed");
            for u in g.vertices() {
                let mut deg = 0u32;
                for a in core.real_out(u) {
                    if let Some(r) = a.as_real() {
                        if r != u && core.is_alive(r) {
                            deg += 1; // direct edge, no message
                        }
                    } else if let Some(v) = a.as_virtual() {
                        stats.messages += 1; // request
                        deg += virtual_degree_reply(&rep, v, u, &mut stats);
                        stats.messages += 1; // reply
                    }
                }
                out[u.0 as usize] = deg;
            }
            stats.memory_bytes = rep.heap_bytes() + n * std::mem::size_of::<u32>();
        }
    }
    stats.millis = start.elapsed().as_millis();
    (out, stats)
}

/// What a virtual node replies to a degree request from `u`. Single-layer
/// fast path; multi-layer recursion forwards through virtual children
/// (counting messages).
fn virtual_degree_reply(rep: &GiraphRep<'_>, v: VirtId, u: RealId, stats: &mut RunStats) -> u32 {
    // For correctness on DEDUP-1 (structurally unique) and BITMAP (mask),
    // count targets visible to source u. C-DUP would over-count — its
    // degree needs the hashset path, which Giraph can't do cheaply; the
    // paper runs Degree only on deduplicated reps.
    let core = match rep {
        GiraphRep::Dedup1(g) => g.as_condensed(),
        GiraphRep::Bitmap(g) => g.core(),
        GiraphRep::CDup(g) => g,
        GiraphRep::Exp(_) => unreachable!("virtual reply on EXP"),
    };
    let out_list = core.virt_out(v);
    let mask = match rep {
        GiraphRep::Bitmap(g) => g.bitmap(v, u),
        _ => None,
    };
    let mut count = 0u32;
    for (i, a) in out_list.iter().enumerate() {
        if let Some(bm) = mask {
            if !bm.get(i) {
                continue;
            }
        }
        if let Some(r) = a.as_real() {
            if r != u && core.is_alive(r) {
                count += 1;
            }
        } else if let Some(w) = a.as_virtual() {
            stats.messages += 2; // forward + reply
            count += virtual_degree_reply(rep, w, u, stats);
        }
    }
    count
}

/// PageRank with per-virtual-node message aggregation. `2·#stored-edges`
/// messages per logical iteration (matching §6.4), two supersteps per
/// iteration on condensed representations.
pub fn pagerank(rep: GiraphRep<'_>, iterations: usize, damping: f64) -> (Vec<f64>, RunStats) {
    let start = Instant::now();
    let mut stats = RunStats::default();
    let g = rep.graph();
    let n = g.num_real_slots();
    let n_live = g.num_vertices().max(1) as f64;
    let (degs, dstats) = degree(rep);
    stats.messages += dstats.messages; // degree precomputation (the §6.4 caveat)
    stats.supersteps += dstats.supersteps;

    let mut rank = vec![0.0f64; n];
    for u in g.vertices() {
        rank[u.0 as usize] = 1.0 / n_live;
    }
    let mut peak_buffer = 0usize;
    let n_dangling = g.vertices().filter(|&u| degs[u.0 as usize] == 0).count() as f64;
    let mut dangling_mass = n_dangling / n_live;

    for _ in 0..iterations {
        let mut incoming = vec![0.0f64; n];
        match rep {
            GiraphRep::Exp(exp) => {
                stats.supersteps += 1;
                for u in exp.vertices() {
                    let d = degs[u.0 as usize];
                    if d == 0 {
                        continue;
                    }
                    let c = rank[u.0 as usize] / d as f64;
                    exp.for_each_neighbor(u, &mut |v| {
                        stats.messages += 1;
                        incoming[v.0 as usize] += c;
                    });
                }
            }
            _ => {
                // Superstep A: contributions to virtual nodes (and direct
                // targets); Superstep B: aggregated distribution.
                stats.supersteps += 2;
                let core = rep.core().expect("condensed");
                // Mailboxes at virtual nodes: (source, contribution).
                let mut vmail: Vec<Vec<(u32, f64)>> = vec![Vec::new(); core.num_virtual()];
                for u in g.vertices() {
                    let d = degs[u.0 as usize];
                    if d == 0 {
                        continue;
                    }
                    let c = rank[u.0 as usize] / d as f64;
                    for a in core.real_out(u) {
                        if let Some(r) = a.as_real() {
                            if r != u && core.is_alive(r) {
                                stats.messages += 1;
                                incoming[r.0 as usize] += c;
                            }
                        } else if let Some(v) = a.as_virtual() {
                            stats.messages += 1;
                            vmail[v.0 as usize].push((u.0, c));
                        }
                    }
                }
                peak_buffer = peak_buffer.max(
                    vmail
                        .iter()
                        .map(|m| m.capacity() * std::mem::size_of::<(u32, f64)>())
                        .sum(),
                );
                // Process virtual nodes top-down (multi-layer: forward
                // aggregated mail to child virtual nodes first).
                let order = topo_virtual(core);
                for &vi in &order {
                    if vmail[vi as usize].is_empty() {
                        continue;
                    }
                    let mail = std::mem::take(&mut vmail[vi as usize]);
                    let total: f64 = mail.iter().map(|(_, c)| c).sum();
                    let by_source: Option<FxHashMap<u32, f64>> = match rep {
                        GiraphRep::Bitmap(_) => Some(mail.iter().copied().collect()),
                        _ => None,
                    };
                    let contributed: FxHashMap<u32, f64> = mail.iter().copied().collect();
                    let out_list = core.virt_out(VirtId(vi));
                    for (i, a) in out_list.iter().enumerate() {
                        if let Some(r) = a.as_real() {
                            if !core.is_alive(r) {
                                continue;
                            }
                            stats.messages += 1;
                            let value = match (&rep, &by_source) {
                                (GiraphRep::Bitmap(bg), Some(by_source)) => {
                                    // Masked per-source sum for this target.
                                    let mut s = 0.0;
                                    for (&src, &c) in by_source {
                                        if src == r.0 {
                                            continue;
                                        }
                                        let visible = bg
                                            .bitmap(VirtId(vi), RealId(src))
                                            .is_none_or(|bm| bm.get(i));
                                        if visible {
                                            s += c;
                                        }
                                    }
                                    s
                                }
                                // DEDUP-1 / C-DUP: aggregate minus own echo.
                                _ => total - contributed.get(&r.0).copied().unwrap_or(0.0),
                            };
                            incoming[r.0 as usize] += value;
                        } else if let Some(w) = a.as_virtual() {
                            // Forward the aggregate (per-source pairs, so
                            // deeper layers can still subtract echoes).
                            stats.messages += mail.len() as u64;
                            vmail[w.0 as usize].extend(mail.iter().copied());
                        }
                    }
                }
            }
        }
        let dangling_share = damping * dangling_mass / n_live;
        let mut next_dangling = 0.0;
        for u in g.vertices() {
            let r = (1.0 - damping) / n_live + damping * incoming[u.0 as usize] + dangling_share;
            rank[u.0 as usize] = r;
            if degs[u.0 as usize] == 0 {
                next_dangling += r;
            }
        }
        dangling_mass = next_dangling;
    }
    stats.memory_bytes = rep.heap_bytes() + peak_buffer + 2 * n * std::mem::size_of::<f64>();
    stats.millis = start.elapsed().as_millis();
    (rank, stats)
}

/// Topological order of virtual nodes (parents before children) so
/// forwarded mail is processed after it arrives.
fn topo_virtual(core: &CondensedGraph) -> Vec<u32> {
    let n = core.num_virtual();
    let mut indeg = vec![0u32; n];
    for v in 0..n {
        for a in core.virt_out(VirtId(v as u32)) {
            if let Some(w) = a.as_virtual() {
                indeg[w.0 as usize] += 1;
            }
        }
    }
    let mut queue: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(v);
        for a in core.virt_out(VirtId(v)) {
            if let Some(w) = a.as_virtual() {
                indeg[w.0 as usize] -= 1;
                if indeg[w.0 as usize] == 0 {
                    queue.push(w.0);
                }
            }
        }
    }
    order
}

/// Connected components by min-label flooding. Duplicate-insensitive: runs
/// on every representation including raw C-DUP (virtual nodes hold the min
/// of their members, which is exactly why the paper saw a speedup here).
pub fn connected_components(rep: GiraphRep<'_>) -> (Vec<u32>, RunStats) {
    let start = Instant::now();
    let mut stats = RunStats::default();
    let g = rep.graph();
    let n = g.num_real_slots();
    let mut label: Vec<u32> = (0..n as u32).collect();
    match rep {
        GiraphRep::Exp(exp) => loop {
            stats.supersteps += 1;
            let mut changed = false;
            let mut next = label.clone();
            for u in exp.vertices() {
                exp.for_each_neighbor(u, &mut |v| {
                    stats.messages += 1;
                    if label[u.0 as usize] < next[v.0 as usize] {
                        next[v.0 as usize] = label[u.0 as usize];
                        changed = true;
                    }
                });
            }
            label = next;
            if !changed {
                break;
            }
        },
        _ => {
            let core = rep.core().expect("condensed");
            let nv = core.num_virtual();
            let mut vlabel = vec![u32::MAX; nv];
            loop {
                stats.supersteps += 2;
                let mut changed = false;
                // real -> virtual (+ direct edges)
                let mut vnext = vlabel.clone();
                let mut next = label.clone();
                for u in g.vertices() {
                    let lu = label[u.0 as usize];
                    for a in core.real_out(u) {
                        stats.messages += 1;
                        if let Some(r) = a.as_real() {
                            if core.is_alive(r) && lu < next[r.0 as usize] {
                                next[r.0 as usize] = lu;
                                changed = true;
                            }
                        } else if let Some(v) = a.as_virtual() {
                            if lu < vnext[v.0 as usize] {
                                vnext[v.0 as usize] = lu;
                                changed = true;
                            }
                        }
                    }
                }
                // virtual -> real / virtual (topological flood)
                for &vi in &topo_virtual(core) {
                    let lv = vnext[vi as usize];
                    if lv == u32::MAX {
                        continue;
                    }
                    for a in core.virt_out(VirtId(vi)) {
                        stats.messages += 1;
                        if let Some(r) = a.as_real() {
                            if core.is_alive(r) && lv < next[r.0 as usize] {
                                next[r.0 as usize] = lv;
                                changed = true;
                            }
                        } else if let Some(w) = a.as_virtual() {
                            if lv < vnext[w.0 as usize] {
                                vnext[w.0 as usize] = lv;
                                changed = true;
                            }
                        }
                    }
                }
                label = next;
                vlabel = vnext;
                if !changed {
                    break;
                }
            }
            stats.memory_bytes = nv * std::mem::size_of::<u32>();
        }
    }
    stats.memory_bytes += rep.heap_bytes() + n * std::mem::size_of::<u32>();
    stats.millis = start.elapsed().as_millis();
    (label, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_common::VertexOrdering;
    use graphgen_dedup::{bitmap2, greedy_virtual_nodes_first};
    use graphgen_graph::CondensedBuilder;

    fn sample_cdup() -> CondensedGraph {
        let mut b = CondensedBuilder::new(8);
        let ids: Vec<RealId> = (0..8).map(RealId).collect();
        b.clique(&ids[0..4]);
        b.clique(&ids[2..6]);
        b.clique(&[ids[6], ids[7]]);
        b.build()
    }

    #[test]
    fn degree_agrees_across_representations() {
        let cdup = sample_cdup();
        let exp = ExpandedGraph::from_rep(&cdup);
        let d1 = greedy_virtual_nodes_first(&cdup, VertexOrdering::Random, 0);
        let (bmp, _) = bitmap2(cdup.clone(), 1);
        let (de, se) = degree(GiraphRep::Exp(&exp));
        let (dd, sd) = degree(GiraphRep::Dedup1(&d1));
        let (db, sb) = degree(GiraphRep::Bitmap(&bmp));
        assert_eq!(de, dd);
        assert_eq!(de, db);
        assert_eq!(se.messages, 0);
        assert!(sd.messages > 0);
        assert!(sb.messages > 0);
    }

    #[test]
    fn pagerank_agrees_with_shared_memory_engine() {
        let cdup = sample_cdup();
        let exp = ExpandedGraph::from_rep(&cdup);
        let d1 = greedy_virtual_nodes_first(&cdup, VertexOrdering::Random, 0);
        let (bmp, _) = bitmap2(cdup.clone(), 1);
        let reference = graphgen_algo::pagerank(
            &exp,
            graphgen_algo::PageRankConfig {
                damping: 0.85,
                iterations: 15,
                threads: 2,
            },
        );
        for (ranks, label) in [
            (pagerank(GiraphRep::Exp(&exp), 15, 0.85).0, "exp"),
            (pagerank(GiraphRep::Dedup1(&d1), 15, 0.85).0, "dedup1"),
            (pagerank(GiraphRep::Bitmap(&bmp), 15, 0.85).0, "bitmap"),
        ] {
            for (i, (a, b)) in ranks.iter().zip(&reference).enumerate() {
                assert!((a - b).abs() < 1e-9, "{label} vertex {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn condensed_pagerank_messages_track_stored_edges() {
        let cdup = sample_cdup();
        let d1 = greedy_virtual_nodes_first(&cdup, VertexOrdering::Random, 0);
        let stored = d1.stored_edge_count();
        let (_, stats) = pagerank(GiraphRep::Dedup1(&d1), 1, 0.85);
        // One iteration ≈ 2 * stored edges (plus the degree round).
        assert!(
            stats.messages <= 3 * stored + 10,
            "messages {} vs stored {}",
            stats.messages,
            stored
        );
    }

    #[test]
    fn exp_pagerank_messages_track_expanded_edges() {
        let cdup = sample_cdup();
        let exp = ExpandedGraph::from_rep(&cdup);
        let (_, stats) = pagerank(GiraphRep::Exp(&exp), 1, 0.85);
        assert_eq!(stats.messages, exp.expanded_edge_count());
    }

    #[test]
    fn concomp_runs_on_raw_cdup() {
        let cdup = sample_cdup();
        let exp = ExpandedGraph::from_rep(&cdup);
        let (le, _) = connected_components(GiraphRep::Exp(&exp));
        let (lc, _) = connected_components(GiraphRep::CDup(&cdup));
        assert_eq!(le, lc);
        assert_eq!(lc[0], 0);
        assert_eq!(lc[5], 0);
        assert_eq!(lc[6], 6);
        assert_eq!(lc[7], 6);
    }
}
