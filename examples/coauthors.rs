//! Co-author analysis on a DBLP-shaped database (the paper's motivating
//! workload): extract the co-author graph condensed, compare representation
//! sizes through the typed conversion API, and find communities via
//! connected components plus the most collaborative authors.
//!
//! Run with: `cargo run --release --example coauthors`

use graphgen::algo;
use graphgen::core::{ConvertOptions, GraphGen, GraphGenConfig};
use graphgen::datagen::{dblp_like, relational::DBLP_COAUTHORS, DblpConfig};
use graphgen::graph::{GraphRep, RepKind};

fn main() {
    let db = dblp_like(DblpConfig {
        authors: 3_000,
        publications: 6_000,
        avg_authors_per_pub: 2.2,
        seed: 7,
    });
    println!(
        "database: {} rows across {} tables",
        db.total_rows(),
        db.table_names().count()
    );

    // Keep the condensed representation (no auto-expansion) so we can
    // compare the paper's trade-offs.
    let gg = GraphGen::with_config(
        &db,
        GraphGenConfig::builder()
            .auto_expand_threshold(None)
            .large_output_factor(0.0)
            .preprocess(false)
            .threads(2)
            .build(),
    );
    let cdup = gg.extract(DBLP_COAUTHORS).expect("extraction");
    let decision = &cdup.report().plans[0].joins[0];
    println!(
        "self-join estimated output {:.0} rows over {} distinct pubs -> large-output: {}",
        decision.estimated_output, decision.distinct, decision.large_output
    );

    // Representation comparison (Fig. 10 in miniature): one convert() call
    // per representation, straight off the handle.
    let opts = ConvertOptions::default();
    println!(
        "\n{:>10} {:>12} {:>12}",
        "rep", "stored edges", "heap bytes"
    );
    for target in [RepKind::CDup, RepKind::Exp, RepKind::Dedup1] {
        let rep = cdup.convert(target, &opts).expect("feasible here");
        println!(
            "{:>10} {:>12} {:>12}",
            target.label(),
            rep.stored_edge_count(),
            rep.heap_bytes()
        );
    }

    // Communities via connected components (duplicate-insensitive: runs on
    // the raw condensed handle).
    let labels = algo::connected_components(&cdup, 4);
    let mut sizes: std::collections::HashMap<u32, usize> = Default::default();
    for u in cdup.vertices() {
        *sizes.entry(labels[u.0 as usize]).or_insert(0) += 1;
    }
    let mut sizes: Vec<(usize, u32)> = sizes.into_iter().map(|(l, s)| (s, l)).collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "\n{} connected components; largest: {:?}",
        sizes.len(),
        &sizes[..sizes.len().min(5)]
    );

    // Most collaborative authors by degree, on the deduplicated handle.
    let dedup1 = cdup.convert(RepKind::Dedup1, &opts).expect("single-layer");
    let degs = algo::degrees(&dedup1, 4);
    let mut by_degree: Vec<(u32, u32)> = dedup1
        .vertices()
        .map(|u| (degs[u.0 as usize], u.0))
        .collect();
    by_degree.sort_unstable_by(|a, b| b.cmp(a));
    println!("\ntop collaborators:");
    for &(d, u) in by_degree.iter().take(5) {
        let name = dedup1
            .properties()
            .get(graphgen::graph::RealId(u), "Name")
            .and_then(|p| p.as_text().map(str::to_string))
            .unwrap_or_default();
        println!("  {name}: {d} distinct co-authors");
    }
}
