//! DEDUP-1: the condensed, structurally deduplicated representation (§4.3).
//!
//! Identical storage to C-DUP, but the deduplication algorithms of §5.2 have
//! rewired it so that **at most one directed path** connects any ordered
//! pair of distinct real nodes. `getNeighbors` is therefore a plain DFS with
//! no hashset — the representation "maintains the simplicity of C-DUP and
//! can easily be serialized and used by other systems" while dropping the
//! per-call dedup overhead.

use crate::api::{GraphRep, RepKind};
use crate::cdup::CondensedGraph;
use crate::ids::RealId;

/// A deduplicated condensed graph. Constructed by the algorithms in
/// `graphgen-dedup`; the `new_unchecked` constructor trusts the caller (and
/// `graphgen-graph::validate::validate_dedup1` verifies the invariant in
/// tests).
#[derive(Debug, Clone)]
pub struct Dedup1Graph {
    inner: CondensedGraph,
}

impl Dedup1Graph {
    /// Wrap a condensed graph the caller guarantees is duplication-free.
    pub fn new_unchecked(inner: CondensedGraph) -> Self {
        Self { inner }
    }

    /// The underlying condensed structure.
    pub fn as_condensed(&self) -> &CondensedGraph {
        &self.inner
    }

    /// Unwrap.
    pub fn into_condensed(self) -> CondensedGraph {
        self.inner
    }

    /// Number of virtual nodes.
    pub fn num_virtual(&self) -> usize {
        self.inner.num_virtual()
    }
}

impl GraphRep for Dedup1Graph {
    fn kind(&self) -> RepKind {
        RepKind::Dedup1
    }

    fn num_real_slots(&self) -> usize {
        self.inner.num_real_slots()
    }

    fn is_alive(&self, u: RealId) -> bool {
        self.inner.is_alive(u)
    }

    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    fn for_each_neighbor(&self, u: RealId, f: &mut dyn FnMut(RealId)) {
        // No seen-hashset: the structural invariant guarantees each distinct
        // neighbor is reached exactly once. (Self-paths may still exist —
        // co-occurrence structures connect u back to itself — so `u` is
        // filtered, and deleted targets are skipped.)
        let mut stack: Vec<u32> = Vec::new();
        for a in self.inner.real_out(u) {
            if let Some(r) = a.as_real() {
                if r != u && self.inner.is_alive(r) {
                    f(r);
                }
            } else if let Some(v) = a.as_virtual() {
                stack.push(v.0);
            }
        }
        while let Some(x) = stack.pop() {
            for a in self.inner.virt_out(crate::ids::VirtId(x)) {
                if let Some(r) = a.as_real() {
                    if r != u && self.inner.is_alive(r) {
                        f(r);
                    }
                } else if let Some(v) = a.as_virtual() {
                    stack.push(v.0);
                }
            }
        }
    }

    fn exists_edge(&self, u: RealId, v: RealId) -> bool {
        self.inner.exists_edge(u, v)
    }

    fn add_vertex(&mut self) -> RealId {
        self.inner.add_vertex()
    }

    fn delete_vertex(&mut self, u: RealId) {
        self.inner.delete_vertex(u)
    }

    fn revive_vertex(&mut self, u: RealId) {
        self.inner.revive_vertex(u)
    }

    fn compact(&mut self) {
        self.inner.compact()
    }

    fn add_edge(&mut self, u: RealId, v: RealId) {
        // A direct edge can only be added if no path exists — preserved by
        // the same check C-DUP does.
        self.inner.add_edge(u, v)
    }

    fn delete_edge(&mut self, u: RealId, v: RealId) {
        self.inner.delete_edge(u, v)
    }

    fn stored_edge_count(&self) -> u64 {
        self.inner.stored_edge_count()
    }

    fn stored_node_count(&self) -> usize {
        self.inner.stored_node_count()
    }

    fn heap_bytes(&self) -> usize {
        self.inner.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CondensedBuilder;

    /// A hand-deduplicated version of the Fig. 1 graph: p2 (={a1,a4}) is
    /// redundant with p1, so its paths are dropped.
    fn fig1_dedup1() -> Dedup1Graph {
        let mut b = CondensedBuilder::new(5);
        b.clique(&[RealId(0), RealId(1), RealId(3)]);
        b.clique(&[RealId(2), RealId(3), RealId(4)]);
        Dedup1Graph::new_unchecked(b.build())
    }

    #[test]
    fn iteration_without_hashset_matches_semantics() {
        let g = fig1_dedup1();
        let mut n0 = g.neighbors(RealId(0));
        n0.sort();
        assert_eq!(n0, vec![RealId(1), RealId(3)]);
        let mut n3 = g.neighbors(RealId(3));
        n3.sort();
        assert_eq!(n3, vec![RealId(0), RealId(1), RealId(2), RealId(4)]);
    }

    #[test]
    fn invariant_holds() {
        let g = fig1_dedup1();
        assert!(crate::validate::validate_dedup1(&g).is_ok());
    }

    #[test]
    fn mutations_delegate() {
        let mut g = fig1_dedup1();
        let v = g.add_vertex();
        g.add_edge(v, RealId(0));
        assert!(g.exists_edge(v, RealId(0)));
        g.delete_edge(v, RealId(0));
        assert!(!g.exists_edge(v, RealId(0)));
        g.delete_vertex(RealId(4));
        assert!(!g.neighbors(RealId(3)).contains(&RealId(4)));
        assert!(crate::validate::validate_dedup1(&g).is_ok());
    }

    #[test]
    fn kind_and_counts() {
        let g = fig1_dedup1();
        assert_eq!(g.kind(), RepKind::Dedup1);
        assert_eq!(g.num_virtual(), 2);
        // pairs {01,03,13,23,24,34} × 2 directions; dropping p2 loses nothing
        // because p1 already connects a1–a4.
        assert_eq!(g.expanded_edge_count(), 12);
    }
}
