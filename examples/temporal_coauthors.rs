//! Temporal graph analytics (§1): extract *multiple* co-author graphs over
//! different time windows using constant selections in the DSL, and compare
//! them — the "juxtapose graphs constructed over different time periods"
//! use case from the paper's introduction.
//!
//! Run with: `cargo run --release --example temporal_coauthors`

use graphgen::algo;
use graphgen::common::SplitMix64;
use graphgen::core::{GraphGen, GraphGenConfig};
use graphgen::graph::GraphRep;
use graphgen::reldb::{Column, Database, Schema, Table, Value};

/// Build a DBLP-like database where AuthorPub carries the publication year.
fn build_db() -> Database {
    let mut rng = SplitMix64::new(99);
    let authors = 400usize;
    let mut author = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
    for a in 0..authors {
        author
            .push_row(vec![
                Value::int(a as i64),
                Value::str(format!("author_{a}")),
            ])
            .unwrap();
    }
    let mut ap = Table::new(Schema::new(vec![
        Column::int("aid"),
        Column::int("pid"),
        Column::int("year"),
    ]));
    for p in 0..1200i64 {
        let year = 2000 + rng.next_below(20) as i64;
        let k = 2 + rng.next_below(3) as i64;
        let mut members = Vec::new();
        while (members.len() as i64) < k {
            // Authors drift over time: later years favor higher ids.
            let base = ((year - 2000) as f64 / 20.0 * authors as f64 * 0.5) as u64;
            let a = (base + rng.next_below(authors as u64 / 2)) % authors as u64;
            if !members.contains(&(a as i64)) {
                members.push(a as i64);
            }
        }
        for a in members {
            ap.push_row(vec![Value::int(a), Value::int(p), Value::int(year)])
                .unwrap();
        }
    }
    let mut db = Database::new();
    db.register("Author", author).unwrap();
    db.register("AuthorPub", ap).unwrap();
    db
}

fn main() {
    let db = build_db();
    let gg = GraphGen::with_config(
        &db,
        GraphGenConfig::builder()
            .auto_expand_threshold(None)
            .build(),
    );
    println!("era          vertices  edges  components  avg_degree");
    for era_start in [2000i64, 2005, 2010, 2015] {
        // One graph per 5-year window; the DSL's constant terms become
        // selection predicates pushed into the extraction queries. Years
        // are enumerated explicitly (the chain DSL supports equality
        // constants); a union of Edges rules covers the window.
        let mut rules = String::from("Nodes(ID, Name) :- Author(ID, Name).\n");
        for year in era_start..era_start + 5 {
            rules.push_str(&format!(
                "Edges(A, B) :- AuthorPub(A, P, {year}), AuthorPub(B, P, {year}).\n"
            ));
        }
        let g = gg.extract(&rules).expect("extraction");
        let labels = algo::connected_components(&g, 2);
        let mut comps: std::collections::HashSet<u32> = Default::default();
        let mut active = 0usize;
        let mut degree_sum = 0usize;
        for u in g.vertices() {
            let d = g.degree(u);
            if d > 0 {
                active += 1;
                degree_sum += d;
                comps.insert(labels[u.0 as usize]);
            }
        }
        println!(
            "{}-{}    {:>6}  {:>5}  {:>10}  {:>9.2}",
            era_start,
            era_start + 4,
            active,
            g.expanded_edge_count(),
            comps.len(),
            degree_sum as f64 / active.max(1) as f64
        );
    }
    println!("\nthe collaboration network drifts across eras: different author cohorts");
    println!("dominate each window (compare component counts and densities).");
}
