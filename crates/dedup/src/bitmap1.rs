//! BITMAP-1 preprocessing (§5.1.1).
//!
//! For every real node `u`, run a depth-first traversal from `u_s` keeping a
//! hashset `H_u` of real nodes already reached. Every visited virtual node
//! that has real out-targets gets a bitmap for `u`: bit `i` is 1 iff the
//! `i`-th out-edge leads to a real node not yet in `H_u` (first encounter) —
//! edges to virtual nodes always keep bit 1 so traversal structure is
//! unchanged. The result: masked traversal from `u` emits every neighbor
//! exactly once, with the same edges as C-DUP plus the bitmap overhead.
//!
//! This is the fastest preprocessing algorithm (`O(n_r * d^{k+1})`) but
//! installs the most bitmaps.

use graphgen_common::{Bitmap, FxHashSet};
use graphgen_graph::{BitmapGraph, CondensedGraph, GraphRep, RealId, VirtId};

/// Run BITMAP-1 on a condensed graph (any number of layers).
pub fn bitmap1(g: CondensedGraph) -> BitmapGraph {
    let n_real = g.num_real_slots();
    let mut out = BitmapGraph::new_unmasked(g);
    for u in 0..n_real as u32 {
        let u = RealId(u);
        if !out.core().is_alive(u) {
            continue;
        }
        process_source(&mut out, u);
    }
    out
}

fn process_source(g: &mut BitmapGraph, u: RealId) {
    let mut hu: FxHashSet<u32> = FxHashSet::default();
    hu.insert(u.0); // never emit self
    let mut visited: FxHashSet<u32> = FxHashSet::default();
    let mut stack: Vec<u32> = Vec::new();
    for a in g.core().real_out(u) {
        if let Some(r) = a.as_real() {
            hu.insert(r.0); // direct edges count as seen
        } else if let Some(v) = a.as_virtual() {
            if visited.insert(v.0) {
                stack.push(v.0);
            }
        }
    }
    while let Some(x) = stack.pop() {
        let out_list = g.core().virt_out(VirtId(x));
        let has_real = out_list.iter().any(|a| !a.is_virtual());
        let mut bitmap = if has_real {
            Some(Bitmap::zeros(out_list.len()))
        } else {
            None
        };
        // Borrow juggling: collect pushes first.
        let mut pushes: Vec<u32> = Vec::new();
        for (i, a) in out_list.iter().enumerate() {
            if let Some(r) = a.as_real() {
                if hu.insert(r.0) {
                    if let Some(bm) = bitmap.as_mut() {
                        bm.set(i);
                    }
                }
            } else if let Some(v) = a.as_virtual() {
                if let Some(bm) = bitmap.as_mut() {
                    bm.set(i); // always traverse virtual edges
                }
                if visited.insert(v.0) {
                    pushes.push(v.0);
                }
            }
        }
        stack.extend(pushes);
        if let Some(bm) = bitmap {
            g.set_bitmap(VirtId(x), u, bm);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_graph::{
        expand_to_edge_list, validate::validate_no_duplicate_emission, CondensedBuilder,
    };

    fn fig1() -> CondensedGraph {
        let mut b = CondensedBuilder::new(5);
        b.clique(&[RealId(0), RealId(1), RealId(3)]);
        b.clique(&[RealId(0), RealId(3)]);
        b.clique(&[RealId(2), RealId(3), RealId(4)]);
        b.build()
    }

    #[test]
    fn single_layer_dedup() {
        let g = fig1();
        let before = expand_to_edge_list(&g);
        let b = bitmap1(g);
        assert_eq!(expand_to_edge_list(&b), before);
        assert!(validate_no_duplicate_emission(&b).is_ok());
        assert!(b.bitmap_count() > 0);
    }

    #[test]
    fn edge_count_unchanged() {
        let g = fig1();
        let stored = g.stored_edge_count();
        let b = bitmap1(g);
        assert_eq!(b.stored_edge_count(), stored);
    }

    #[test]
    fn multilayer_diamond_dedup() {
        // u -> {V1, V2} -> V3 -> {w1, w2}; plus u -> V4 -> w1.
        let mut b = CondensedBuilder::new(3);
        let v1 = b.add_virtual();
        let v2 = b.add_virtual();
        let v3 = b.add_virtual();
        let v4 = b.add_virtual();
        b.real_to_virtual(RealId(0), v1);
        b.real_to_virtual(RealId(0), v2);
        b.real_to_virtual(RealId(0), v4);
        b.virtual_to_virtual(v1, v3);
        b.virtual_to_virtual(v2, v3);
        b.virtual_to_real(v3, RealId(1));
        b.virtual_to_real(v3, RealId(2));
        b.virtual_to_real(v4, RealId(1));
        let g = b.build();
        let before = expand_to_edge_list(&g);
        let bg = bitmap1(g);
        assert_eq!(expand_to_edge_list(&bg), before);
        assert!(validate_no_duplicate_emission(&bg).is_ok());
    }

    #[test]
    fn direct_edges_suppress_virtual_duplicates() {
        let mut b = CondensedBuilder::new(2);
        b.clique(&[RealId(0), RealId(1)]);
        b.direct(RealId(0), RealId(1));
        let g = b.build();
        let bg = bitmap1(g);
        assert!(validate_no_duplicate_emission(&bg).is_ok());
        assert_eq!(bg.neighbors(RealId(0)).len(), 1);
    }
}
