//! Table 2: the small-dataset inventory — real nodes, virtual nodes,
//! average virtual-node size, and expanded edge count.

use graphgen_bench::{row, small_datasets};
use graphgen_graph::GraphRep;

fn main() {
    println!("Table 2: small datasets (scaled stand-ins)\n");
    let widths = [12, 12, 12, 10, 12];
    row(
        &[
            "dataset",
            "real_nodes",
            "virt_nodes",
            "avg_size",
            "exp_edges",
        ]
        .map(String::from),
        &widths,
    );
    for (name, g) in small_datasets() {
        let nv = g.num_virtual().max(1);
        // membership edges / 2 per member (in+out) / #vnodes
        let avg = g.stored_edge_count() as f64 / 2.0 / nv as f64;
        row(
            &[
                name.to_string(),
                g.num_vertices().to_string(),
                g.num_virtual().to_string(),
                format!("{avg:.1}"),
                g.expanded_edge_count().to_string(),
            ],
            &widths,
        );
    }
    println!("\npaper shape: DBLP has many small virtual nodes (avg ~2), IMDB medium (~10),");
    println!("Synthetic_2 few huge overlapping cliques (~94).");
}
