//! The Appendix C.1 synthetic condensed-graph generator.
//!
//! Existing random-graph generators produce expanded graphs; the paper
//! needs graphs **born condensed**. Its generator, which we follow:
//!
//! 1. create all real nodes; draw each virtual node's size from a normal
//!    distribution `N(mean, sd)` (clamped to ≥ 1);
//! 2. split each virtual node into two with probability relative to size;
//! 3. assign 15% of the virtual nodes members uniformly at random (the
//!    bootstrap batch);
//! 4. fill the remaining virtual nodes by *preferential attachment*: with
//!    35% probability a split-derived node is filled randomly, otherwise
//!    members are drawn from the neighborhood of a high-degree anchor with
//!    probability ∝ degree², preserving local density;
//! 5. merge split halves back together.
//!
//! The output is a symmetric single-layer [`CondensedGraph`] (member-set
//! cliques), the shape co-occurrence extraction produces.

use graphgen_common::SplitMix64;
use graphgen_graph::{CondensedBuilder, CondensedGraph, RealId};

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct CondensedGenConfig {
    /// Number of real nodes (`n1`).
    pub n_real: usize,
    /// Number of virtual nodes (`n2`).
    pub n_virtual: usize,
    /// Mean virtual-node size (`m`).
    pub mean_size: f64,
    /// Standard deviation of sizes (`sd`).
    pub sd_size: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CondensedGenConfig {
    /// The paper's Synthetic_1: many small virtual nodes.
    pub fn synthetic_1(scale: f64) -> Self {
        Self {
            n_real: (20_000.0 * scale) as usize,
            n_virtual: (200_000.0 * scale) as usize,
            mean_size: 7.0,
            sd_size: 3.0,
            seed: 101,
        }
    }

    /// The paper's Synthetic_2: few very large overlapping cliques.
    pub fn synthetic_2(scale: f64) -> Self {
        Self {
            n_real: (200_000.0 * scale) as usize,
            n_virtual: (1_000.0 * scale).max(8.0) as usize,
            mean_size: 94.0,
            sd_size: 30.0,
            seed: 102,
        }
    }
}

/// Draw from N(mean, sd) via Box–Muller.
fn normal(rng: &mut SplitMix64, mean: f64, sd: f64) -> f64 {
    let u1 = rng.next_f64().max(1e-12);
    let u2 = rng.next_f64();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + sd * z
}

/// Generate a symmetric single-layer condensed graph.
pub fn synthetic_condensed(cfg: CondensedGenConfig) -> CondensedGraph {
    assert!(cfg.n_real >= 2, "need at least two real nodes");
    let mut rng = SplitMix64::new(cfg.seed);
    // Step 1: sizes.
    let sizes: Vec<usize> = (0..cfg.n_virtual)
        .map(|_| {
            (normal(&mut rng, cfg.mean_size, cfg.sd_size).round() as isize)
                .clamp(1, cfg.n_real as isize) as usize
        })
        .collect();
    // Step 2: split large nodes (probability relative to size).
    let max_size = sizes.iter().copied().max().unwrap_or(1).max(1);
    // pieces: (final_vnode_index, piece_size, from_split)
    let mut pieces: Vec<(usize, usize, bool)> = Vec::with_capacity(cfg.n_virtual * 2);
    for (vn, &size) in sizes.iter().enumerate() {
        let split = size > 1 && rng.next_f64() < size as f64 / max_size as f64;
        if split {
            let first = size / 2;
            pieces.push((vn, first.max(1), true));
            pieces.push((vn, (size - first).max(1), true));
        } else {
            pieces.push((vn, size, false));
        }
    }
    let mut degree: Vec<u32> = vec![0; cfg.n_real];
    let mut members_of: Vec<Vec<u32>> = vec![Vec::new(); cfg.n_virtual];
    // Step 3: bootstrap batch — 15% of pieces get uniform random members.
    let bootstrap = (pieces.len() * 15 / 100).max(1);
    let assign_random =
        |rng: &mut SplitMix64, size: usize, n_real: usize, degree: &mut [u32]| -> Vec<u32> {
            let mut members: Vec<u32> = Vec::with_capacity(size);
            while members.len() < size.min(n_real) {
                let r = rng.next_below(n_real as u64) as u32;
                if !members.contains(&r) {
                    members.push(r);
                    degree[r as usize] += 1;
                }
            }
            members
        };
    for &(vn, size, _) in pieces.iter().take(bootstrap) {
        let members = assign_random(&mut rng, size, cfg.n_real, &mut degree);
        members_of[vn].extend(members);
    }
    // Step 4: preferential attachment for the rest.
    for &(vn, size, from_split) in pieces.iter().skip(bootstrap) {
        if from_split && rng.next_f64() < 0.35 {
            let members = assign_random(&mut rng, size, cfg.n_real, &mut degree);
            members_of[vn].extend(members);
            continue;
        }
        // Anchor: degree-biased pick (fall back to uniform when degrees
        // are all zero).
        let total_deg: u64 = degree.iter().map(|&d| d as u64).sum();
        let anchor = if total_deg == 0 {
            rng.next_below(cfg.n_real as u64) as u32
        } else {
            let mut target = rng.next_below(total_deg);
            let mut pick = 0u32;
            for (i, &d) in degree.iter().enumerate() {
                if (d as u64) > target {
                    pick = i as u32;
                    break;
                }
                target -= d as u64;
            }
            pick
        };
        // Members: quadratic-degree-biased choices near the anchor id (a
        // locality proxy), topped up uniformly.
        let mut members: Vec<u32> = vec![anchor];
        degree[anchor as usize] += 1;
        let window = (size * 8).max(16).min(cfg.n_real);
        let base = (anchor as usize)
            .saturating_sub(window / 2)
            .min(cfg.n_real - window);
        let mut attempts = 0;
        while members.len() < size.min(cfg.n_real) && attempts < size * 40 {
            attempts += 1;
            let cand = (base + rng.next_below(window as u64) as usize) as u32;
            if members.contains(&cand) {
                continue;
            }
            let d = degree[cand as usize] as f64;
            let p = ((d + 1.0) * (d + 1.0)) / ((max_size as f64) * (max_size as f64));
            if rng.next_f64() < p.max(0.15) {
                members.push(cand);
                degree[cand as usize] += 1;
            }
        }
        while members.len() < size.min(cfg.n_real) {
            let r = rng.next_below(cfg.n_real as u64) as u32;
            if !members.contains(&r) {
                members.push(r);
                degree[r as usize] += 1;
            }
        }
        members_of[vn].extend(members);
    }
    // Step 5: merge (pieces of the same original vnode were accumulated
    // into the same member list) and build.
    let mut b = CondensedBuilder::new(cfg.n_real);
    for mut members in members_of {
        members.sort_unstable();
        members.dedup();
        if members.len() < 2 {
            continue;
        }
        let ids: Vec<RealId> = members.into_iter().map(RealId).collect();
        b.clique(&ids);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_graph::GraphRep;

    #[test]
    fn respects_size_parameters() {
        let g = synthetic_condensed(CondensedGenConfig {
            n_real: 500,
            n_virtual: 100,
            mean_size: 6.0,
            sd_size: 2.0,
            seed: 1,
        });
        assert_eq!(g.num_real_slots(), 500);
        let nv = g.num_virtual();
        assert!((50..=100).contains(&nv), "virtual nodes: {nv}");
        let avg = g.stored_edge_count() as f64 / 2.0 / nv as f64;
        assert!((3.0..12.0).contains(&avg), "avg membership: {avg}");
    }

    #[test]
    fn symmetric_single_layer() {
        let g = synthetic_condensed(CondensedGenConfig {
            n_real: 200,
            n_virtual: 50,
            mean_size: 5.0,
            sd_size: 2.0,
            seed: 3,
        });
        assert!(g.is_single_layer());
        assert!(graphgen_dedup::dedup2_greedy::member_sets(&g).is_ok());
    }

    #[test]
    fn deterministic() {
        let cfg = CondensedGenConfig {
            n_real: 300,
            n_virtual: 60,
            mean_size: 5.0,
            sd_size: 1.0,
            seed: 9,
        };
        let a = synthetic_condensed(cfg);
        let b = synthetic_condensed(cfg);
        assert_eq!(
            graphgen_graph::expand_to_edge_list(&a),
            graphgen_graph::expand_to_edge_list(&b)
        );
    }

    #[test]
    fn dense_config_builds_overlapping_cliques() {
        let g = synthetic_condensed(CondensedGenConfig {
            n_real: 400,
            n_virtual: 12,
            mean_size: 60.0,
            sd_size: 15.0,
            seed: 4,
        });
        // Dense overlap: expansion should dwarf the condensed size.
        assert!(g.expanded_edge_count() > 2 * g.stored_edge_count());
    }

    #[test]
    fn presets_scale() {
        let s1 = CondensedGenConfig::synthetic_1(0.01);
        assert_eq!(s1.n_real, 200);
        let s2 = CondensedGenConfig::synthetic_2(0.01);
        assert_eq!(s2.n_real, 2000);
    }
}
