//! C-DUP: the condensed representation with duplicates (§4.1, §4.3).
//!
//! This is the structure extraction produces "essentially for free": real
//! nodes, virtual nodes (one per join-attribute value of a large-output
//! join), and directed edges real→virtual, virtual→virtual (multi-layer),
//! virtual→real, plus optional direct real→real edges. A logical edge
//! `u → v` exists iff a directed path leads from `u` to `v`.
//!
//! Because several paths may connect the same pair (two authors sharing two
//! papers), `getNeighbors` must deduplicate **on the fly**: it runs a
//! depth-first traversal keeping a hashset of already-emitted neighbors —
//! exactly the execution penalty the paper attributes to C-DUP.

use crate::api::{GraphRep, RepKind};
use crate::chunk::ChunkedAdj;
use crate::ids::{Adj, RealId, VirtId};
use graphgen_common::FxHashSet;

/// The condensed duplicated graph.
///
/// Adjacency is held in [`ChunkedAdj`] stores: cloning a condensed graph is
/// `O(#chunks)` pointer bumps, and the patch surface below copies only the
/// chunks a mutation lands in (see `crate::chunk` for the structural
/// sharing contract the serving layer builds on).
#[derive(Debug, Clone)]
pub struct CondensedGraph {
    /// Out-edges of each real node (sorted: real targets first).
    pub(crate) real_out: ChunkedAdj,
    /// Out-edges of each virtual node (sorted: real targets first).
    pub(crate) virt_out: ChunkedAdj,
    /// Liveness of real nodes (lazy deletion).
    pub(crate) alive: Vec<bool>,
    pub(crate) n_alive: usize,
}

impl CondensedGraph {
    /// Wrap pre-built adjacency (lists must be sorted and deduplicated —
    /// [`crate::builder::CondensedBuilder`] guarantees this).
    pub(crate) fn from_parts(real_out: Vec<Vec<Adj>>, virt_out: Vec<Vec<Adj>>) -> Self {
        let n = real_out.len();
        Self {
            real_out: ChunkedAdj::from_lists(real_out),
            virt_out: ChunkedAdj::from_lists(virt_out),
            alive: vec![true; n],
            n_alive: n,
        }
    }

    /// Assemble from decoded chunked stores (the snapshot codec's exit
    /// point; shape and liveness lengths already validated).
    pub(crate) fn from_chunked(
        real_out: ChunkedAdj,
        virt_out: ChunkedAdj,
        alive: Vec<bool>,
    ) -> Self {
        let n_alive = alive.iter().filter(|&&a| a).count();
        Self {
            real_out,
            virt_out,
            alive,
            n_alive,
        }
    }

    /// Number of virtual nodes.
    pub fn num_virtual(&self) -> usize {
        self.virt_out.len()
    }

    /// The chunked real-node adjacency store (structural-sharing
    /// diagnostics and the snapshot codec).
    pub fn real_out_chunks(&self) -> &ChunkedAdj {
        &self.real_out
    }

    /// The chunked virtual-node adjacency store.
    pub fn virt_out_chunks(&self) -> &ChunkedAdj {
        &self.virt_out
    }

    /// Out-adjacency of a virtual node.
    pub fn virt_out(&self, v: VirtId) -> &[Adj] {
        self.virt_out.list(v.0 as usize)
    }

    /// Out-adjacency of a real node (virtual targets and direct edges).
    pub fn real_out(&self, u: RealId) -> &[Adj] {
        self.real_out.list(u.0 as usize)
    }

    /// True if there are no virtual→virtual edges (single-layer graph).
    pub fn is_single_layer(&self) -> bool {
        self.virt_out
            .iter()
            .all(|list| list.iter().all(|a| !a.is_virtual()))
    }

    /// Number of virtual layers: the length of the longest virtual chain
    /// (0 if there are no virtual nodes).
    pub fn layer_count(&self) -> usize {
        // Longest path in the virtual DAG, by memoized DFS.
        let n = self.virt_out.len();
        if n == 0 {
            return 0;
        }
        let mut depth = vec![0u32; n]; // 0 = unvisited; depth >= 1 once computed
        fn dfs(g: &CondensedGraph, v: usize, depth: &mut Vec<u32>) -> u32 {
            if depth[v] != 0 {
                return depth[v];
            }
            let mut best = 1;
            for a in g.virt_out.list(v) {
                if let Some(w) = a.as_virtual() {
                    best = best.max(1 + dfs(g, w.0 as usize, depth));
                }
            }
            depth[v] = best;
            best
        }
        (0..n).map(|v| dfs(self, v, &mut depth)).max().unwrap_or(0) as usize
    }

    /// Reverse index: for each virtual node, the real nodes with an edge to
    /// it (`I(V)` in the paper's notation). Only meaningful for single-layer
    /// graphs, where all in-edges of virtual nodes come from reals.
    pub fn real_in_index(&self) -> Vec<Vec<u32>> {
        let mut index = vec![Vec::new(); self.virt_out.len()];
        for (u, list) in self.real_out.iter().enumerate() {
            for a in list {
                if let Some(v) = a.as_virtual() {
                    index[v.0 as usize].push(u as u32);
                }
            }
        }
        index
    }

    /// All real nodes reachable from `u` (the expanded out-neighborhood),
    /// **including** duplicates-collapsed but excluding `u`. Shared by
    /// `for_each_neighbor` and the deduplication algorithms.
    pub fn reach_set(&self, u: RealId) -> FxHashSet<u32> {
        let mut seen = FxHashSet::default();
        self.for_each_neighbor(u, &mut |v| {
            seen.insert(v.0);
        });
        seen
    }

    /// DFS from a virtual node collecting all reachable real targets
    /// (alive only).
    pub fn virtual_reach(&self, v: VirtId, out: &mut FxHashSet<u32>) {
        let mut visited: FxHashSet<u32> = FxHashSet::default();
        let mut stack = vec![v.0];
        visited.insert(v.0);
        while let Some(x) = stack.pop() {
            for a in self.virt_out.list(x as usize) {
                if let Some(r) = a.as_real() {
                    if self.alive[r.0 as usize] {
                        out.insert(r.0);
                    }
                } else if let Some(w) = a.as_virtual() {
                    if visited.insert(w.0) {
                        stack.push(w.0);
                    }
                }
            }
        }
    }

    /// Does a path from virtual node `v` reach real node `target`?
    fn virtual_reaches(&self, v: VirtId, target: RealId) -> bool {
        let mut visited: FxHashSet<u32> = FxHashSet::default();
        let mut stack = vec![v.0];
        visited.insert(v.0);
        while let Some(x) = stack.pop() {
            let list = self.virt_out.list(x as usize);
            if contains_real(list, target) {
                return true;
            }
            for a in list {
                if let Some(w) = a.as_virtual() {
                    if visited.insert(w.0) {
                        stack.push(w.0);
                    }
                }
            }
        }
        false
    }

    /// Detach `u` from virtual node `v` (removes the `u → v` edge only).
    pub fn detach_real_from_virtual(&mut self, u: RealId, v: VirtId) {
        self.real_out.remove_sorted(u.0 as usize, Adj::virt(v));
    }

    /// Remove the `v → u` edge from a virtual node to a real target.
    pub fn remove_virtual_to_real(&mut self, v: VirtId, u: RealId) {
        self.virt_out.remove_sorted(v.0 as usize, Adj::real(u));
    }

    /// Insert a direct `u → v` edge, keeping the list sorted. No-op if the
    /// direct edge is already present.
    pub fn insert_direct(&mut self, u: RealId, v: RealId) {
        self.real_out.insert_sorted(u.0 as usize, Adj::real(v));
    }

    // ---- incremental patch surface --------------------------------------
    //
    // The in-place counterparts of the `CondensedBuilder` edge methods.
    // Unlike the 7-operation logical API above, these mutate the *stored*
    // structure directly (no path-existence checks, no compensation), which
    // is what delta maintenance needs: it mirrors the structure a fresh
    // extraction would have built.

    /// Append a fresh, unconnected virtual node (the patch-time counterpart
    /// of `CondensedBuilder::add_virtual`).
    pub fn add_virtual_node(&mut self) -> VirtId {
        self.virt_out.push(&[]);
        VirtId(self.virt_out.len() as u32 - 1)
    }

    /// Insert the membership edge `u → v`, keeping the list sorted. No-op
    /// if present.
    pub fn insert_real_to_virtual(&mut self, u: RealId, v: VirtId) {
        self.real_out.insert_sorted(u.0 as usize, Adj::virt(v));
    }

    /// Insert the edge `v → u` from a virtual node to a real target, keeping
    /// the list sorted. No-op if present.
    pub fn insert_virtual_to_real(&mut self, v: VirtId, u: RealId) {
        self.virt_out.insert_sorted(v.0 as usize, Adj::real(u));
    }

    /// Insert the virtual–virtual edge `v → w` (multi-layer chains), keeping
    /// the list sorted. No-op if present.
    pub fn insert_virtual_to_virtual(&mut self, v: VirtId, w: VirtId) {
        self.virt_out.insert_sorted(v.0 as usize, Adj::virt(w));
    }

    /// Remove the virtual–virtual edge `v → w`. No-op if absent.
    pub fn remove_virtual_to_virtual(&mut self, v: VirtId, w: VirtId) {
        self.virt_out.remove_sorted(v.0 as usize, Adj::virt(w));
    }

    /// Remove a direct `u → v` edge **only** (no path compensation — the
    /// raw counterpart of [`CondensedGraph::insert_direct`], as opposed to
    /// the logical `delete_edge`). No-op if absent.
    pub fn remove_direct(&mut self, u: RealId, v: RealId) {
        self.real_out.remove_sorted(u.0 as usize, Adj::real(v));
    }

    /// Expand virtual node `v` in place: connect every in-neighbor to every
    /// out-target directly and empty the virtual node (§4.2 Step 6). Only
    /// valid when all of `v`'s in-edges come from real nodes and all
    /// out-edges go to real nodes; `in_reals` is the list of real sources
    /// (callers keep a reverse index).
    pub fn expand_virtual(&mut self, v: VirtId, in_reals: &[u32]) {
        let targets: Vec<RealId> = self
            .virt_out
            .list(v.0 as usize)
            .iter()
            .filter_map(|a| a.as_real())
            .collect();
        debug_assert_eq!(
            targets.len(),
            self.virt_out.list(v.0 as usize).len(),
            "expand_virtual on a node with virtual out-edges"
        );
        for &u in in_reals {
            self.detach_real_from_virtual(RealId(u), v);
            for &t in &targets {
                if t.0 != u {
                    self.insert_direct(RealId(u), t);
                }
            }
        }
        self.virt_out.clear(v.0 as usize);
    }

    /// Remove virtual nodes with no out-edges or no in-edges (cleanup after
    /// expansion or deduplication). Virtual ids are *not* reindexed.
    pub fn stored_virtual_count(&self) -> usize {
        // Virtual nodes that still participate: have out-edges or are
        // referenced. Empty husks left by expansion don't count.
        let mut referenced = vec![false; self.virt_out.len()];
        for list in self.real_out.iter().chain(self.virt_out.iter()) {
            for a in list {
                if let Some(v) = a.as_virtual() {
                    referenced[v.0 as usize] = true;
                }
            }
        }
        self.virt_out
            .iter()
            .enumerate()
            .filter(|(i, list)| !list.is_empty() || referenced[*i])
            .count()
    }
}

/// Binary search for a real target in a sorted adjacency list (real targets
/// sort before virtual ones, so the real prefix is contiguous).
#[inline]
pub(crate) fn contains_real(list: &[Adj], target: RealId) -> bool {
    list.binary_search(&Adj::real(target)).is_ok()
}

impl GraphRep for CondensedGraph {
    fn kind(&self) -> RepKind {
        RepKind::CDup
    }

    fn num_real_slots(&self) -> usize {
        self.real_out.len()
    }

    fn is_alive(&self, u: RealId) -> bool {
        self.alive[u.0 as usize]
    }

    fn num_vertices(&self) -> usize {
        self.n_alive
    }

    fn for_each_neighbor(&self, u: RealId, f: &mut dyn FnMut(RealId)) {
        // The paper's C-DUP iterator: DFS from u_s, hashset of seen
        // neighbors to skip duplicates.
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        let mut visited_virts: FxHashSet<u32> = FxHashSet::default();
        let mut stack: Vec<u32> = Vec::new();
        for a in self.real_out.list(u.0 as usize) {
            if let Some(r) = a.as_real() {
                if r != u && self.alive[r.0 as usize] && seen.insert(r.0) {
                    f(r);
                }
            } else if let Some(v) = a.as_virtual() {
                if visited_virts.insert(v.0) {
                    stack.push(v.0);
                }
            }
        }
        while let Some(x) = stack.pop() {
            for a in self.virt_out.list(x as usize) {
                if let Some(r) = a.as_real() {
                    if r != u && self.alive[r.0 as usize] && seen.insert(r.0) {
                        f(r);
                    }
                } else if let Some(v) = a.as_virtual() {
                    if visited_virts.insert(v.0) {
                        stack.push(v.0);
                    }
                }
            }
        }
    }

    fn exists_edge(&self, u: RealId, v: RealId) -> bool {
        if u == v || !self.alive[u.0 as usize] || !self.alive[v.0 as usize] {
            return false;
        }
        if contains_real(self.real_out.list(u.0 as usize), v) {
            return true;
        }
        self.real_out
            .list(u.0 as usize)
            .iter()
            .filter_map(|a| a.as_virtual())
            .any(|w| self.virtual_reaches(w, v))
    }

    fn add_vertex(&mut self) -> RealId {
        self.real_out.push(&[]);
        self.alive.push(true);
        self.n_alive += 1;
        RealId(self.real_out.len() as u32 - 1)
    }

    fn delete_vertex(&mut self, u: RealId) {
        if std::mem::replace(&mut self.alive[u.0 as usize], false) {
            self.n_alive -= 1;
        }
    }

    fn revive_vertex(&mut self, u: RealId) {
        if !std::mem::replace(&mut self.alive[u.0 as usize], true) {
            self.n_alive += 1;
        }
    }

    fn compact(&mut self) {
        // Physically remove dead nodes: their own out-lists and their
        // occurrences as targets. A whole-graph rewrite: every chunk is
        // unshared (compaction runs on pristine conversion copies, not the
        // delta path).
        let alive = &self.alive;
        self.real_out
            .retain(|slot, a| alive[slot] && a.as_real().is_none_or(|r| alive[r.0 as usize]));
        self.virt_out
            .retain(|_, a| a.as_real().is_none_or(|r| alive[r.0 as usize]));
    }

    fn add_edge(&mut self, u: RealId, v: RealId) {
        if u != v && !self.exists_edge(u, v) {
            self.insert_direct(u, v);
        }
    }

    fn delete_edge(&mut self, u: RealId, v: RealId) {
        // Remove a direct edge if present.
        self.real_out.remove_sorted(u.0 as usize, Adj::real(v));
        // Detach u from every virtual child whose reach includes v, then
        // compensate with direct edges to the other reachable targets —
        // the "non-trivial modifications" §4.3 warns about.
        let offending: Vec<VirtId> = self
            .real_out
            .list(u.0 as usize)
            .iter()
            .filter_map(|a| a.as_virtual())
            .filter(|&w| self.virtual_reaches(w, v))
            .collect();
        if offending.is_empty() {
            return;
        }
        let mut lost: FxHashSet<u32> = FxHashSet::default();
        for &w in &offending {
            self.virtual_reach(w, &mut lost);
            self.detach_real_from_virtual(u, w);
        }
        lost.remove(&v.0);
        lost.remove(&u.0);
        let mut lost: Vec<u32> = lost.into_iter().collect();
        lost.sort_unstable();
        for w in lost {
            if !self.exists_edge(u, RealId(w)) {
                self.insert_direct(u, RealId(w));
            }
        }
    }

    fn stored_edge_count(&self) -> u64 {
        let alive = &self.alive;
        let real: u64 = self
            .real_out
            .iter()
            .enumerate()
            .filter(|(i, _)| alive[*i])
            .map(|(_, l)| l.len() as u64)
            .sum();
        let virt: u64 = self.virt_out.iter().map(|l| l.len() as u64).sum();
        real + virt
    }

    fn stored_node_count(&self) -> usize {
        self.n_alive + self.stored_virtual_count()
    }

    fn heap_bytes(&self) -> usize {
        self.real_out.heap_bytes() + self.virt_out.heap_bytes() + self.alive.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CondensedBuilder;

    /// The Fig. 1 toy graph: pubs p1={a1,a2,a4}, p2={a1,a4}, p3={a3,a4,a5}.
    /// (0-indexed here: a1..a5 -> 0..4.)
    pub(crate) fn fig1() -> CondensedGraph {
        let mut b = CondensedBuilder::new(5);
        b.clique(&[RealId(0), RealId(1), RealId(3)]);
        b.clique(&[RealId(0), RealId(3)]);
        b.clique(&[RealId(2), RealId(3), RealId(4)]);
        b.build()
    }

    #[test]
    fn fig1_neighbor_sets() {
        let g = fig1();
        let n = |i: u32| {
            let mut v = g.neighbors(RealId(i));
            v.sort();
            v.iter().map(|r| r.0).collect::<Vec<_>>()
        };
        assert_eq!(n(0), vec![1, 3]); // a1: a2, a4 (through both p1 and p2 — deduped)
        assert_eq!(n(1), vec![0, 3]);
        assert_eq!(n(2), vec![3, 4]);
        assert_eq!(n(3), vec![0, 1, 2, 4]);
        assert_eq!(n(4), vec![2, 3]);
    }

    #[test]
    fn fig1_expanded_edge_count_matches_paper() {
        // Fig. 1c: 48 edges counting directed pairs incl. self-loops per the
        // paper's drawing; excluding self-loops the co-author relation here
        // is {01,03,13,23,24,34} ×2 directions = 12.
        let g = fig1();
        assert_eq!(g.expanded_edge_count(), 12);
    }

    #[test]
    fn duplication_is_invisible_to_neighbors() {
        // a1 and a4 share two pubs: exactly one logical edge.
        let g = fig1();
        let count = g.neighbors(RealId(0)).iter().filter(|r| r.0 == 3).count();
        assert_eq!(count, 1);
    }

    #[test]
    fn exists_edge_via_virtual_and_direct() {
        let mut g = fig1();
        assert!(g.exists_edge(RealId(0), RealId(3)));
        assert!(!g.exists_edge(RealId(0), RealId(2)));
        g.add_edge(RealId(0), RealId(2));
        assert!(g.exists_edge(RealId(0), RealId(2)));
        // adding an existing logical edge is a no-op
        let before = g.stored_edge_count();
        g.add_edge(RealId(0), RealId(3));
        assert_eq!(g.stored_edge_count(), before);
    }

    #[test]
    fn delete_edge_preserves_other_sources() {
        let mut g = fig1();
        g.delete_edge(RealId(0), RealId(3));
        assert!(!g.exists_edge(RealId(0), RealId(3)));
        // a2 still reaches a4 through p1; a4 still reaches a1.
        assert!(g.exists_edge(RealId(1), RealId(3)));
        assert!(g.exists_edge(RealId(3), RealId(0)));
        // a1 keeps its edge to a2 (compensated direct edge).
        assert!(g.exists_edge(RealId(0), RealId(1)));
    }

    #[test]
    fn delete_vertex_is_lazy_and_compact_reclaims() {
        let mut g = fig1();
        g.delete_vertex(RealId(3));
        assert_eq!(g.num_vertices(), 4);
        assert!(!g.neighbors(RealId(0)).contains(&RealId(3)));
        assert!(!g.exists_edge(RealId(0), RealId(3)));
        let edges_before = g.stored_edge_count();
        g.compact();
        assert!(g.stored_edge_count() < edges_before);
        // Logical view unchanged by compaction.
        assert!(g.exists_edge(RealId(2), RealId(4)));
        assert!(!g.exists_edge(RealId(2), RealId(3)));
    }

    #[test]
    fn add_vertex_then_connect() {
        let mut g = fig1();
        let v = g.add_vertex();
        assert_eq!(g.degree(v), 0);
        g.add_edge(v, RealId(0));
        assert!(g.exists_edge(v, RealId(0)));
        assert_eq!(g.neighbors(v), vec![RealId(0)]);
    }

    #[test]
    fn single_layer_and_layer_count() {
        let g = fig1();
        assert!(g.is_single_layer());
        assert_eq!(g.layer_count(), 1);
        // Build a 2-layer graph: u -> V1 -> V2 -> w
        let mut b = CondensedBuilder::new(2);
        let v1 = b.add_virtual();
        let v2 = b.add_virtual();
        b.real_to_virtual(RealId(0), v1);
        b.virtual_to_virtual(v1, v2);
        b.virtual_to_real(v2, RealId(1));
        let g2 = b.build();
        assert!(!g2.is_single_layer());
        assert_eq!(g2.layer_count(), 2);
        assert_eq!(g2.neighbors(RealId(0)), vec![RealId(1)]);
        assert!(g2.exists_edge(RealId(0), RealId(1)));
    }

    #[test]
    fn multilayer_diamond_dedups() {
        // u -> V1 -> V3 -> w and u -> V2 -> V3 -> w: one logical edge.
        let mut b = CondensedBuilder::new(2);
        let v1 = b.add_virtual();
        let v2 = b.add_virtual();
        let v3 = b.add_virtual();
        b.real_to_virtual(RealId(0), v1);
        b.real_to_virtual(RealId(0), v2);
        b.virtual_to_virtual(v1, v3);
        b.virtual_to_virtual(v2, v3);
        b.virtual_to_real(v3, RealId(1));
        let g = b.build();
        assert_eq!(g.neighbors(RealId(0)), vec![RealId(1)]);
        assert_eq!(g.expanded_edge_count(), 1);
    }

    #[test]
    fn real_in_index_inverts_membership() {
        let g = fig1();
        let index = g.real_in_index();
        assert_eq!(index.len(), 3);
        assert_eq!(index[0], vec![0, 1, 3]); // p1's sources
        assert_eq!(index[1], vec![0, 3]);
        assert_eq!(index[2], vec![2, 3, 4]);
    }

    #[test]
    fn expand_virtual_inlines_edges() {
        let mut g = fig1();
        let index = g.real_in_index();
        g.expand_virtual(VirtId(1), &index[1]); // p2 = {a1, a4}
                                                // logical graph unchanged
        assert!(g.exists_edge(RealId(0), RealId(3)));
        assert!(g.exists_edge(RealId(3), RealId(0)));
        assert!(g.virt_out(VirtId(1)).is_empty());
    }

    #[test]
    fn revive_restores_hidden_adjacency() {
        let mut g = fig1();
        g.delete_vertex(RealId(3));
        assert!(!g.exists_edge(RealId(0), RealId(3)));
        assert_eq!(g.num_vertices(), 4);
        g.revive_vertex(RealId(3));
        assert_eq!(g.num_vertices(), 5);
        assert!(g.exists_edge(RealId(0), RealId(3)));
        // Reviving a live vertex is a no-op.
        g.revive_vertex(RealId(3));
        assert_eq!(g.num_vertices(), 5);
    }

    #[test]
    fn patch_surface_mirrors_builder() {
        // Build fig1 once via the builder and once via in-place patches;
        // the structures must match edge-for-edge.
        let reference = fig1();
        let mut g = CondensedBuilder::new(5).build();
        for group in [vec![0u32, 1, 3], vec![0, 3], vec![2, 3, 4]] {
            let v = g.add_virtual_node();
            for &m in &group {
                g.insert_real_to_virtual(RealId(m), v);
                g.insert_virtual_to_real(v, RealId(m));
            }
        }
        for u in 0..5u32 {
            assert_eq!(g.real_out(RealId(u)), reference.real_out(RealId(u)));
        }
        for v in 0..3u32 {
            assert_eq!(g.virt_out(VirtId(v)), reference.virt_out(VirtId(v)));
        }
        // Raw removals undo raw insertions (no compensation edges appear).
        g.insert_direct(RealId(0), RealId(2));
        g.remove_direct(RealId(0), RealId(2));
        g.insert_virtual_to_virtual(VirtId(0), VirtId(1));
        g.remove_virtual_to_virtual(VirtId(0), VirtId(1));
        assert_eq!(g.real_out(RealId(0)), reference.real_out(RealId(0)));
        assert_eq!(g.virt_out(VirtId(0)), reference.virt_out(VirtId(0)));
    }

    #[test]
    fn expanded_count_default_matches_manual() {
        let g = fig1();
        let edges = crate::expand_to_edge_list(&g);
        assert_eq!(edges.len() as u64, g.expanded_edge_count());
    }
}
