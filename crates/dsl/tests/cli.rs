//! Integration tests for the `graphgen-check` binary: exit codes, caret
//! rendering on stdout, `--deny-warnings`, lint groups, and usage errors.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixtures() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_graphgen-check"))
        .args(args)
        .current_dir(fixtures())
        .output()
        .expect("spawn graphgen-check")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn clean_file_exits_zero() {
    let out = run(&[
        "--schema",
        "schema.ggs",
        "--deny-warnings",
        "w103_dedup2_infeasible.ggd",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("w103_dedup2_infeasible.ggd: OK"));
}

#[test]
fn error_fixture_exits_one_with_caret_output() {
    let out = run(&["--schema", "schema.ggs", "e001_unknown_relation.ggd"]);
    assert_eq!(out.status.code(), Some(1));
    let s = stdout(&out);
    assert!(
        s.contains("error[E001]: unknown relation `AuthorPubb`"),
        "{s}"
    );
    assert!(s.contains("--> e001_unknown_relation.ggd:2:20"), "{s}");
    assert!(s.contains("^^^^^^^^^^"), "{s}");
    assert!(s.contains("did you mean `AuthorPub`?"), "{s}");
    assert!(s.contains("1 error(s), 0 warning(s)"), "{s}");
}

#[test]
fn schema_free_checks_still_run() {
    let out = run(&["e006_cyclic_body.ggd"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).contains("error[E006]"));
}

#[test]
fn warnings_pass_unless_denied() {
    let out = run(&["--schema", "schema.ggs", "w101_unsatisfiable_filter.ggd"]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("warning[W101]"));
    let out = run(&[
        "--schema",
        "schema.ggs",
        "--deny-warnings",
        "w101_unsatisfiable_filter.ggd",
    ]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn lint_groups_are_opt_in() {
    let base = &["--schema", "schema.ggs", "w105_large_output_segment.ggd"];
    let out = run(base);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("OK"));
    let out = run(&[&["--lint", "plan"], &base[..]].concat());
    assert_eq!(out.status.code(), Some(0), "lints warn, not error");
    assert!(stdout(&out).contains("warning[W105]"));
    let out = run(&[&["--lint", "plan", "--deny-warnings"], &base[..]].concat());
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn multiple_files_and_quiet() {
    let out = run(&[
        "-q",
        "--schema",
        "schema.ggs",
        "w105_large_output_segment.ggd",
        "e003_arity_mismatch.ggd",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let s = stdout(&out);
    assert!(!s.contains("OK"), "quiet suppresses OK lines: {s}");
    assert!(s.contains("error[E003]"));
}

#[test]
fn usage_and_io_errors_exit_two() {
    let out = run(&["--bogus-flag", "x.ggd"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["no_such_file.ggd"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&[
        "--schema",
        "no_such_schema.ggs",
        "e001_unknown_relation.ggd",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["--lint", "nonsense", "e001_unknown_relation.ggd"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("usage: graphgen-check"));
}
