//! Degree computation (one of the three evaluation kernels, Fig. 11).
//!
//! On EXP this is an adjacency-length read; on condensed representations
//! each vertex iterates its (deduplicated) neighbors — which is exactly the
//! cost difference the paper's Degree benchmark measures. Runs through the
//! vertex-centric framework to exercise the multithreaded path.

use crate::vertex_centric::{run_vertex_centric, VertexCentricConfig, VertexProgram};
use graphgen_graph::{GraphRep, RealId};

struct DegreeProgram;

impl<G: GraphRep + Sync> VertexProgram<G> for DegreeProgram {
    type State = u32;

    fn init(&self, _g: &G, _u: RealId) -> u32 {
        0
    }

    fn compute(&self, g: &G, u: RealId, _prev: &[u32], _step: usize) -> (u32, bool) {
        (g.degree(u) as u32, true)
    }
}

/// Out-degree of every vertex (dead vertices report 0).
pub fn degrees<G: GraphRep + Sync>(g: &G, threads: usize) -> Vec<u32> {
    let (states, steps) = run_vertex_centric(
        g,
        &DegreeProgram,
        VertexCentricConfig {
            threads,
            max_supersteps: 2,
        },
    );
    debug_assert_eq!(steps, 1);
    states
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_graph::{CondensedBuilder, ExpandedGraph};

    #[test]
    fn degrees_on_expanded() {
        let g = ExpandedGraph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 0), (2, 3)]);
        assert_eq!(degrees(&g, 2), vec![3, 1, 1, 0]);
    }

    #[test]
    fn degrees_on_condensed_dedup_on_the_fly() {
        // Duplicated pair must count once.
        let mut b = CondensedBuilder::new(3);
        b.clique(&[RealId(0), RealId(1)]);
        b.clique(&[RealId(0), RealId(1), RealId(2)]);
        let g = b.build();
        assert_eq!(degrees(&g, 1), vec![2, 2, 2]);
    }

    #[test]
    fn dead_vertex_reports_zero() {
        let mut g = ExpandedGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        g.delete_vertex(RealId(1));
        let d = degrees(&g, 2);
        assert_eq!(d[0], 0); // its only neighbor died
        assert_eq!(d[1], 0); // dead
        assert_eq!(d[2], 1);
    }
}
