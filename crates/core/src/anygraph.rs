//! Runtime-chosen representation.
//!
//! The paper's system picks a representation per dataset / per analysis
//! (§6.5). [`AnyGraph`] is the dynamic wrapper: it holds any of the five
//! representations, implements the full [`GraphRep`] API by dispatch, and
//! provides the conversion entry points (expansion, the DEDUP-1 algorithms,
//! DEDUP-2, BITMAP-1/2).

use graphgen_dedup::{bitmap1, bitmap2, dedup2_greedy, Dedup1Algorithm, VertexOrdering};
use graphgen_graph::{
    BitmapGraph, CondensedGraph, Dedup1Graph, Dedup2Graph, ExpandedGraph, GraphRep, RealId,
    RepKind,
};

/// Any of the five in-memory representations.
#[derive(Debug, Clone)]
pub enum AnyGraph {
    /// Condensed with duplicates.
    CDup(CondensedGraph),
    /// Fully expanded.
    Exp(ExpandedGraph),
    /// Structurally deduplicated condensed.
    Dedup1(Dedup1Graph),
    /// Single-layer symmetric optimization.
    Dedup2(Dedup2Graph),
    /// Condensed with traversal bitmaps.
    Bitmap(BitmapGraph),
}

impl AnyGraph {
    fn inner(&self) -> &dyn GraphRep {
        match self {
            AnyGraph::CDup(g) => g,
            AnyGraph::Exp(g) => g,
            AnyGraph::Dedup1(g) => g,
            AnyGraph::Dedup2(g) => g,
            AnyGraph::Bitmap(g) => g,
        }
    }

    fn inner_mut(&mut self) -> &mut dyn GraphRep {
        match self {
            AnyGraph::CDup(g) => g,
            AnyGraph::Exp(g) => g,
            AnyGraph::Dedup1(g) => g,
            AnyGraph::Dedup2(g) => g,
            AnyGraph::Bitmap(g) => g,
        }
    }

    /// The condensed core, if this is a condensed representation.
    pub fn as_condensed(&self) -> Option<&CondensedGraph> {
        match self {
            AnyGraph::CDup(g) => Some(g),
            AnyGraph::Dedup1(g) => Some(g.as_condensed()),
            AnyGraph::Bitmap(g) => Some(g.core()),
            _ => None,
        }
    }

    /// Expand into EXP (always possible).
    pub fn to_exp(&self) -> ExpandedGraph {
        match self {
            AnyGraph::Exp(g) => g.clone(),
            other => ExpandedGraph::from_rep(other.inner()),
        }
    }

    /// Run a DEDUP-1 algorithm. Requires a C-DUP source (single-layer; use
    /// `graphgen_dedup::flatten_to_single_layer` first for multi-layer).
    pub fn to_dedup1(
        &self,
        algo: Dedup1Algorithm,
        ordering: VertexOrdering,
        seed: u64,
    ) -> Option<Dedup1Graph> {
        let core = self.as_condensed()?;
        if !core.is_single_layer() {
            return None;
        }
        Some(algo.run(core, ordering, seed))
    }

    /// Run the DEDUP-2 constructor (symmetric single-layer sources only).
    pub fn to_dedup2(&self, ordering: VertexOrdering, seed: u64) -> Option<Dedup2Graph> {
        let core = self.as_condensed()?;
        graphgen_dedup::dedup2_greedy::member_sets(core)?;
        Some(dedup2_greedy(core, ordering, seed))
    }

    /// Run BITMAP-1 preprocessing.
    pub fn to_bitmap1(&self) -> Option<BitmapGraph> {
        Some(bitmap1(self.as_condensed()?.clone()))
    }

    /// Run BITMAP-2 preprocessing.
    pub fn to_bitmap2(&self, threads: usize) -> Option<BitmapGraph> {
        Some(bitmap2(self.as_condensed()?.clone(), threads).0)
    }
}

impl GraphRep for AnyGraph {
    fn kind(&self) -> RepKind {
        self.inner().kind()
    }
    fn num_real_slots(&self) -> usize {
        self.inner().num_real_slots()
    }
    fn is_alive(&self, u: RealId) -> bool {
        self.inner().is_alive(u)
    }
    fn num_vertices(&self) -> usize {
        self.inner().num_vertices()
    }
    fn for_each_neighbor(&self, u: RealId, f: &mut dyn FnMut(RealId)) {
        self.inner().for_each_neighbor(u, f)
    }
    fn exists_edge(&self, u: RealId, v: RealId) -> bool {
        self.inner().exists_edge(u, v)
    }
    fn add_vertex(&mut self) -> RealId {
        self.inner_mut().add_vertex()
    }
    fn delete_vertex(&mut self, u: RealId) {
        self.inner_mut().delete_vertex(u)
    }
    fn compact(&mut self) {
        self.inner_mut().compact()
    }
    fn add_edge(&mut self, u: RealId, v: RealId) {
        self.inner_mut().add_edge(u, v)
    }
    fn delete_edge(&mut self, u: RealId, v: RealId) {
        self.inner_mut().delete_edge(u, v)
    }
    fn stored_edge_count(&self) -> u64 {
        self.inner().stored_edge_count()
    }
    fn stored_node_count(&self) -> usize {
        self.inner().stored_node_count()
    }
    fn heap_bytes(&self) -> usize {
        self.inner().heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_graph::{expand_to_edge_list, CondensedBuilder};

    fn sample() -> AnyGraph {
        let mut b = CondensedBuilder::new(5);
        b.clique(&[RealId(0), RealId(1), RealId(3)]);
        b.clique(&[RealId(0), RealId(3)]);
        b.clique(&[RealId(2), RealId(3), RealId(4)]);
        AnyGraph::CDup(b.build())
    }

    #[test]
    fn conversions_preserve_semantics() {
        let g = sample();
        let truth = expand_to_edge_list(&g);
        assert_eq!(expand_to_edge_list(&g.to_exp()), truth);
        for algo in Dedup1Algorithm::all() {
            let d1 = g.to_dedup1(algo, VertexOrdering::Random, 1).unwrap();
            assert_eq!(expand_to_edge_list(&d1), truth, "{}", algo.label());
        }
        let d2 = g.to_dedup2(VertexOrdering::Descending, 0).unwrap();
        assert_eq!(expand_to_edge_list(&d2), truth);
        let b1 = g.to_bitmap1().unwrap();
        assert_eq!(expand_to_edge_list(&b1), truth);
        let b2 = g.to_bitmap2(1).unwrap();
        assert_eq!(expand_to_edge_list(&b2), truth);
    }

    #[test]
    fn dispatch_works() {
        let mut g = sample();
        assert_eq!(g.kind(), RepKind::CDup);
        assert_eq!(g.num_vertices(), 5);
        assert!(g.exists_edge(RealId(0), RealId(3)));
        let v = g.add_vertex();
        g.add_edge(v, RealId(0));
        assert!(g.exists_edge(v, RealId(0)));
        g.delete_vertex(v);
        assert_eq!(g.num_vertices(), 5);
    }

    #[test]
    fn exp_variant_conversion_noops() {
        let g = sample();
        let exp = AnyGraph::Exp(g.to_exp());
        assert_eq!(exp.kind(), RepKind::Exp);
        assert!(exp.as_condensed().is_none());
        assert!(exp.to_dedup1(Dedup1Algorithm::NaiveVnf, VertexOrdering::Random, 0).is_none());
        assert_eq!(expand_to_edge_list(&exp.to_exp()), expand_to_edge_list(&g));
    }
}
