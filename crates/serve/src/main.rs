//! `graphgen-serve` — serve extracted graphs over TCP.
//!
//! ```text
//! graphgen-serve [--port N] [--dir PATH] [--no-fsync] [--demo]
//!                [--metrics-dump] [--smoke]
//! ```
//!
//! * `--port N` — listen on 127.0.0.1:N (default 7411; 0 = ephemeral)
//! * `--dir PATH` — persistent service directory: recovered with
//!   `GraphService::open` when it already holds a service, created fresh
//!   otherwise
//! * `--no-fsync` — skip fsync on WAL appends / snapshot writes
//! * `--demo` — seed the paper's Fig. 1 DBLP toy tables (Author,
//!   AuthorPub) so `EXTRACT` works out of the box; implied when the
//!   service is fresh and purely in-memory
//! * `--metrics-dump` — build (or recover) the service, print the
//!   canonical multi-line Prometheus-style metrics exposition to stdout,
//!   and exit without serving (the `METRICS` verb carries the same text
//!   in escaped one-line form)
//! * `--smoke` — self-test: start an ephemeral server, drive one
//!   CHECK/EXTRACT/EXPLAIN/NEIGHBORS/ANALYZE/APPLY/STATS round-trip
//!   through the real TCP protocol (including a statically rejected
//!   EXTRACT with its per-code rejection counters, a skewed-insert burst
//!   that flips a frozen plan's `stale_plan` drift flag, an
//!   analyze → publish → re-analyze sequence that must warm-start, and a
//!   METRICS + TRACE pass that must find the deliberately slow ANALYZE in
//!   the trace ring), shut down cleanly, and exit non-zero on any
//!   mismatch (used by CI)
//!
//! The protocol is newline-delimited text — see `graphgen_serve::protocol`
//! — so `nc 127.0.0.1 7411` is a usable client.

use graphgen_reldb::Database;
use graphgen_serve::{spawn, GraphService, ServiceConfig};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

/// The demo dataset: the paper's Fig. 1 DBLP toy instance (shared with the
/// crate's tests via `testutil`).
use graphgen_serve::testutil::fig1_db as demo_db;

struct Args {
    port: u16,
    dir: Option<String>,
    fsync: bool,
    demo: bool,
    metrics_dump: bool,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        port: 7411,
        dir: None,
        fsync: true,
        demo: false,
        metrics_dump: false,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--port" => {
                let v = it.next().ok_or("--port needs a value")?;
                args.port = v.parse().map_err(|_| format!("bad port `{v}`"))?;
            }
            "--dir" => args.dir = Some(it.next().ok_or("--dir needs a value")?),
            "--no-fsync" => args.fsync = false,
            "--demo" => args.demo = true,
            "--metrics-dump" => args.metrics_dump = true,
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                return Err(
                    "usage: graphgen-serve [--port N] [--dir PATH] [--no-fsync] \
                     [--demo] [--metrics-dump] [--smoke]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn build_service(args: &Args) -> Result<GraphService, String> {
    let cfg = ServiceConfig {
        fsync: args.fsync,
        ..ServiceConfig::default()
    };
    match &args.dir {
        Some(dir) => {
            if std::path::Path::new(dir).join("db.snap").exists() {
                if args.demo {
                    eprintln!("note: --demo ignored, recovering existing service from {dir}");
                }
                GraphService::open_with(dir, cfg).map_err(|e| format!("open {dir}: {e}"))
            } else {
                GraphService::create(dir, demo_or_empty(args.demo), cfg)
                    .map_err(|e| format!("create {dir}: {e}"))
            }
        }
        None => Ok(GraphService::in_memory(demo_or_empty(true))),
    }
}

fn demo_or_empty(demo: bool) -> Database {
    if demo {
        demo_db()
    } else {
        Database::new()
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.smoke {
        return match smoke() {
            Ok(()) => {
                println!("SMOKE PASS");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("SMOKE FAIL: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    let service = match build_service(&args) {
        Ok(s) => Arc::new(s),
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.metrics_dump {
        // The canonical multi-line exposition, without the one-line wire
        // framing the METRICS verb needs.
        print!("{}", service.metrics_text());
        return ExitCode::SUCCESS;
    }
    let listener = match TcpListener::bind(("127.0.0.1", args.port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bind 127.0.0.1:{}: {e}", args.port);
            return ExitCode::FAILURE;
        }
    };
    match spawn(service, listener) {
        Ok(handle) => {
            println!("graphgen-serve listening on {}", handle.addr());
            handle.wait();
            println!("graphgen-serve stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("spawn: {e}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// --smoke: the CI round-trip
// ---------------------------------------------------------------------------

fn smoke() -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let tmp = graphgen_serve::testutil::TempDir::new("smoke");
    let cfg = ServiceConfig {
        // A 1µs slow-op threshold makes the ANALYZE computations below
        // deliberately "slow": they must land in the TRACE ring.
        slow_op_ns: 1_000,
        ..ServiceConfig::default()
    };
    let service =
        Arc::new(GraphService::create(tmp.path(), demo_db(), cfg).map_err(|e| e.to_string())?);
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let handle = spawn(service, listener).map_err(|e| e.to_string())?;
    let addr = handle.addr();

    let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut send = |line: &str| -> Result<String, String> {
        writeln!(writer, "{line}").map_err(|e| e.to_string())?;
        let mut response = String::new();
        reader.read_line(&mut response).map_err(|e| e.to_string())?;
        let response = response.trim_end().to_string();
        println!("> {line}\n< {response}");
        Ok(response)
    };
    let expect = |got: String, prefix: &str| -> Result<(), String> {
        if got.starts_with(prefix) {
            Ok(())
        } else {
            Err(format!("expected `{prefix}…`, got `{got}`"))
        }
    };

    expect(send("PING")?, "OK pong")?;
    // Pre-flight the extraction query through the static checker, then a
    // deliberately broken variant: coded diagnostics, nothing registered.
    expect(
        send(
            "CHECK coauthors Nodes(ID, Name) :- Author(ID, Name). \
             Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).",
        )?,
        "OK clean",
    )?;
    expect(
        send(
            "CHECK coauthors Nodes(ID, Name) :- Writer(ID, Name). \
             Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).",
        )?,
        "OK errors=1 warnings=0 | E001 unknown-relation",
    )?;
    // An EXTRACT the checker rejects: coded ERR line, counted in STATS.
    expect(
        send(
            "EXTRACT badquery Nodes(ID, Name) :- Writer(ID, Name). \
             Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).",
        )?,
        "ERR check failed: E001 unknown-relation",
    )?;
    expect(
        send(
            "EXTRACT coauthors Nodes(ID, Name) :- Author(ID, Name). \
             Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).",
        )?,
        "OK version=1 vertices=5",
    )?;
    expect(send("NEIGHBORS coauthors 4")?, "OK version=1 n=4")?;
    // EXPLAIN with a DSL costs a candidate program on live statistics
    // (registering nothing); bare EXPLAIN re-costs the registered graph's
    // frozen plan — fresh from extraction it is optimal by definition.
    expect(
        send(
            "EXPLAIN candidate Nodes(ID, Name) :- Author(ID, Name). \
             Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).",
        )?,
        "OK chain 1: AuthorPub ⋈ AuthorPub | plan: cost=",
    )?;
    expect(
        send("EXPLAIN coauthors")?,
        "OK graph coauthors: drift=1.00 stale_plan=false",
    )?;
    expect(send("APPLY AuthorPub +2,3")?, "OK rows=1 coauthors@2")?;
    // The new co-authorship (a2 joined publication 3) is immediately served.
    expect(send("NEIGHBORS coauthors 2")?, "OK version=2 n=4")?;
    expect(send("DEGREE coauthors 2")?, "OK version=2 degree=4")?;
    expect(send("STATS coauthors")?, "OK coauthors version=2")?;
    // Analytics on the live snapshot: a cold PageRank at version 2, served
    // from the background pool and cached under (graph, algo, params, v).
    let analyzed = send("ANALYZE coauthors pagerank")?;
    expect(
        analyzed.clone(),
        "OK version=2 fresh=true algo=pagerank path=",
    )?;
    if !analyzed.contains("warm=false") {
        return Err(format!("first analysis must be cold: `{analyzed}`"));
    }
    // The result is retrievable without recomputation.
    expect(
        send("ANALYZE STATUS coauthors pagerank")?,
        "OK version=2 fresh=true algo=pagerank",
    )?;
    // Drift round-trip: pile 20 memberships onto publication 1. The
    // frozen plan kept the self-join in one segment (8·8/3 ≈ 21 under
    // threshold 32); at 29 rows the live min-cost plan cuts it
    // (29·29/3 ≈ 280 over threshold 116), so the plan must read stale.
    let burst: Vec<String> = (0..20).map(|i| format!("+{},1", 100 + i)).collect();
    expect(
        send(&format!("APPLY AuthorPub {}", burst.join(" ")))?,
        "OK rows=20 coauthors@3",
    )?;
    let stats = send("STATS coauthors")?;
    if !stats.contains("stale_plan=true") {
        return Err(format!("expected `stale_plan=true` in `{stats}`"));
    }
    // The publish bumped the graph to version 3: the cached version-2
    // entry is stale-tagged but readable, and a re-analysis warm-starts
    // from its rank vector.
    expect(
        send("ANALYZE STATUS coauthors pagerank")?,
        "OK version=2 fresh=false",
    )?;
    let reanalyzed = send("ANALYZE coauthors pagerank")?;
    expect(
        reanalyzed.clone(),
        "OK version=3 fresh=true algo=pagerank path=",
    )?;
    if !reanalyzed.contains("warm=true") {
        return Err(format!("re-analysis must warm-start: `{reanalyzed}`"));
    }
    let status = send("ANALYZE STATUS")?;
    if !status.contains("analyzes=2 hits=0 warm_starts=1") {
        return Err(format!(
            "expected `analyzes=2 hits=0 warm_starts=1` in `{status}`"
        ));
    }
    expect(send("EXPLAIN coauthors")?, "OK graph coauthors: drift=")?;
    // Reverting the skew restores the statistics: the flag clears.
    let revert: Vec<String> = (0..20).map(|i| format!("-{},1", 100 + i)).collect();
    expect(
        send(&format!("APPLY AuthorPub {}", revert.join(" ")))?,
        "OK rows=20 coauthors@4",
    )?;
    let stats = send("STATS coauthors")?;
    if !stats.contains("drift=1.00 stale_plan=false") {
        return Err(format!(
            "expected `drift=1.00 stale_plan=false` in `{stats}`"
        ));
    }
    // The bare STATS line carries the rejection counters: exactly the one
    // statically rejected EXTRACT above (CHECKs never count).
    let stats = send("STATS")?;
    if !stats.contains("rejects=1 reject_codes=E001:1") {
        return Err(format!(
            "expected `rejects=1 reject_codes=E001:1` in `{stats}`"
        ));
    }
    // …and the analysis counters, warm-start savings included.
    if !stats.contains("analyzes=2 analyze_hits=0 warm_starts=1") {
        return Err(format!(
            "expected `analyzes=2 analyze_hits=0 warm_starts=1` in `{stats}`"
        ));
    }
    // The observability surface. METRICS carries the whole registry as an
    // escaped one-liner; unescaping restores the canonical multi-line
    // exposition --metrics-dump prints directly.
    let metrics_line = send("METRICS")?;
    let Some(escaped) = metrics_line.strip_prefix("OK ") else {
        return Err(format!(
            "METRICS: expected an OK line, got `{metrics_line}`"
        ));
    };
    let exposition = graphgen_common::metrics::unescape_exposition(escaped);
    if !exposition.contains('\n') {
        return Err("unescaped METRICS exposition should be multi-line".into());
    }
    let families: std::collections::BTreeSet<&str> = exposition
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    if families.len() < 25 {
        return Err(format!(
            "METRICS enumerates only {} instrument families (expected >= 25)",
            families.len()
        ));
    }
    for needed in [
        "graphgen_request_ns",
        "graphgen_apply_phase_ns",
        "graphgen_extract_phase_ns",
        "graphgen_wal_fsync_ns",
        "graphgen_analyze_compute_ns",
        "graphgen_recovery_replay_ns",
    ] {
        if !families.contains(needed) {
            return Err(format!("METRICS missing the `{needed}` family"));
        }
    }
    if !exposition.contains("verb=\"apply\"") || !exposition.contains("phase=\"publish\"") {
        return Err("METRICS missing per-verb/per-phase labelled series".into());
    }
    println!("metrics: {} instrument families exposed", families.len());
    // Every command above outran the 1µs threshold, so the ring holds the
    // whole session — the ANALYZE computations must be in there with
    // their phase breakdowns.
    let trace = send("TRACE")?;
    if !trace.starts_with("OK n=") {
        return Err(format!("TRACE: expected `OK n=…`, got `{trace}`"));
    }
    if !trace.contains("verb=analyze ") {
        return Err(format!("TRACE should hold the slow ANALYZE: `{trace}`"));
    }
    // Drained: a second TRACE no longer holds the analyses (at most the
    // first TRACE itself, which also outran the threshold).
    let trace = send("TRACE")?;
    if !trace.starts_with("OK n=") || trace.contains("verb=analyze ") {
        return Err(format!("TRACE ring was not drained: `{trace}`"));
    }
    expect(send("SHUTDOWN")?, "OK bye")?;
    handle.wait();

    // The abrupt-drop recovery contract, through the same directory.
    let recovered = GraphService::open(tmp.path()).map_err(|e| e.to_string())?;
    let snap = recovered.snapshot("coauthors").map_err(|e| e.to_string())?;
    if snap.version() != 4 {
        return Err(format!("recovered version {} != 4", snap.version()));
    }
    println!("recovery: coauthors@{} served after reopen", snap.version());
    Ok(())
}
