//! The serving layer: snapshot-isolated concurrent serving with binary
//! persistence and crash recovery.
//!
//! Run with: `cargo run --example serve`

use graphgen::graph::GraphRep;
use graphgen::reldb::{Column, Database, Schema, Table, Value};
use graphgen::serve::{Algo, AnalyzeParams, GraphService, ServiceConfig, TableMutation};
use std::sync::Arc;

fn sample_db() -> Database {
    let mut author = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
    for (id, name) in [(1, "Ada"), (2, "Barbara"), (3, "Grace"), (4, "Hedy")] {
        author
            .push_row(vec![Value::int(id), Value::str(name)])
            .unwrap();
    }
    let mut ap = Table::new(Schema::new(vec![Column::int("aid"), Column::int("pid")]));
    for (a, p) in [(1, 1), (2, 1), (3, 2), (4, 2), (1, 2)] {
        ap.push_row(vec![Value::int(a), Value::int(p)]).unwrap();
    }
    let mut db = Database::new();
    db.register("Author", author).unwrap();
    db.register("AuthorPub", ap).unwrap();
    db
}

const QUERY: &str = "Nodes(ID, Name) :- Author(ID, Name). \
                     Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).";

fn main() {
    // A persistent service: every committed version is durable (snapshot +
    // write-ahead delta log) and recoverable after a crash.
    let dir = std::env::temp_dir().join(format!("graphgen-serve-example-{}", std::process::id()));
    let service = Arc::new(
        GraphService::create(&dir, sample_db(), ServiceConfig::default()).expect("create service"),
    );

    // Register a graph: extracted incrementally, persisted, published at
    // version 1.
    let v1 = service.extract("coauthors", QUERY).expect("extract");
    println!(
        "extracted `{}` at version {}: {} vertices",
        v1.name(),
        v1.version(),
        v1.handle().num_vertices()
    );

    // Readers pin a version with an Arc snapshot: no locks held afterwards,
    // and concurrent writers can never tear this view.
    let pinned = service.snapshot("coauthors").expect("snapshot");
    let ada_before = pinned
        .handle()
        .neighbors_by_key(&Value::int(1))
        .unwrap()
        .len();

    // The writer applies a mutation batch: one DeltaBatch, one WAL record,
    // one atomically published version per affected graph.
    let outcome = service
        .apply(&[TableMutation::new(
            "AuthorPub",
            vec![vec![Value::int(2), Value::int(2)]], // Barbara joins pub 2
            vec![],
        )])
        .expect("apply");
    for (name, version, patch) in &outcome.graphs {
        println!(
            "published `{name}` version {version} (+{} stored edges)",
            patch.stored_edges_added
        );
    }

    // The pinned reader still sees version 1; a fresh snapshot sees v2.
    let fresh = service.snapshot("coauthors").expect("snapshot");
    println!(
        "pinned reader: version {} (Ada degree {}), fresh reader: version {} (Ada degree {})",
        pinned.version(),
        ada_before,
        fresh.version(),
        fresh.handle().degree_by_key(&Value::int(1)).unwrap()
    );

    // Crash recovery: drop the service abruptly (no shutdown call exists —
    // durability happened at apply time) and reopen the directory.
    let expected = fresh.canonical_bytes();
    drop(fresh);
    drop(pinned);
    drop(service);
    let recovered = GraphService::open(&dir).expect("recover");
    let snap = recovered.snapshot("coauthors").expect("snapshot");
    assert_eq!(snap.canonical_bytes(), expected);
    println!(
        "recovered `coauthors` at version {} — byte-identical to the pre-crash state",
        snap.version()
    );

    // Analytics run *on* the service: ANALYZE pins the published snapshot
    // and computes on a background pool — readers and the writer never
    // wait — with results cached per (graph, algo, params, version). The
    // recovered cache is cold by construction, so this first call computes.
    let params = AnalyzeParams::default();
    let cold = recovered
        .analyze("coauthors", Algo::Pagerank, &params)
        .expect("analyze");
    println!(
        "cold analysis: {}",
        cold.render(recovered.snapshot("coauthors").unwrap().version())
    );

    // The recovered service keeps serving reads and writes.
    recovered
        .apply(&[TableMutation::new(
            "Author",
            vec![vec![Value::int(9), Value::str("Mary")]],
            vec![],
        )])
        .expect("apply after recovery");
    println!(
        "post-recovery apply published version {}",
        recovered.snapshot("coauthors").unwrap().version()
    );

    // The publish invalidated the cached result (new version = new key);
    // re-analyzing warm-starts the fixpoint from the superseded vector.
    let warm = recovered
        .analyze("coauthors", Algo::Pagerank, &params)
        .expect("re-analyze");
    println!(
        "after publish:  {}",
        warm.render(recovered.snapshot("coauthors").unwrap().version())
    );
    let counters = recovered.analyze_counters();
    println!(
        "analytics: {} computed, {} cache hits, {} warm starts, {} iterations saved",
        counters.computes, counters.hits, counters.warm_starts, counters.iterations_saved
    );

    let _ = std::fs::remove_dir_all(&dir);
}
