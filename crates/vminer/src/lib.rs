//! `graphgen-vminer` — the VMiner baseline ("Virtual Node Miner", Buehrer &
//! Chellapilla, WSDM'08 — reference \[11\] of the GraphGen paper).
//!
//! VMiner is the structural-compression comparator in the paper's Fig. 10:
//! it takes an **already expanded** graph (the key disadvantage the paper
//! highlights — it cannot exploit the implicit relational structure), mines
//! bicliques `A × B` via shingle-hash clustering of adjacency lists, and
//! replaces each with a virtual node (`a → C` for `a ∈ A`, `C → b` for
//! `b ∈ B`), iterating for several passes. The output is a duplicate-free
//! condensed graph, directly comparable to DEDUP-1.

use graphgen_common::{FxHashMap, SplitMix64};
use graphgen_graph::{CondensedBuilder, Dedup1Graph, ExpandedGraph, GraphRep, RealId};
use std::hash::{Hash, Hasher};

/// VMiner parameters.
#[derive(Debug, Clone, Copy)]
pub struct VMinerConfig {
    /// Mining passes over the graph (the paper's VMiner makes multiple).
    pub passes: usize,
    /// Minimum biclique source-side size.
    pub min_sources: usize,
    /// Minimum biclique target-side size.
    pub min_targets: usize,
    /// Number of min-hash functions per shingle signature.
    pub hashes: usize,
    /// Cluster size cap (keeps the within-cluster mining quadratic cost
    /// bounded).
    pub max_cluster: usize,
    /// RNG seed for the hash functions.
    pub seed: u64,
}

impl Default for VMinerConfig {
    fn default() -> Self {
        Self {
            passes: 4,
            min_sources: 2,
            min_targets: 2,
            hashes: 2,
            max_cluster: 256,
            seed: 42,
        }
    }
}

fn minhash(adj: &[u32], salt: u64) -> u64 {
    let mut best = u64::MAX;
    for &v in adj {
        let mut h = graphgen_common::FxHasher::default();
        (v as u64 ^ salt).hash(&mut h);
        best = best.min(h.finish());
    }
    best
}

/// Compress an expanded graph. Returns the condensed result and the number
/// of bicliques extracted.
pub fn vminer(g: &ExpandedGraph, cfg: VMinerConfig) -> (Dedup1Graph, usize) {
    let n = g.num_real_slots();
    // Mutable adjacency (direct edges remaining) + extracted bicliques.
    let mut adj: Vec<Vec<u32>> = (0..n as u32)
        .map(|u| {
            let mut list: Vec<u32> = Vec::new();
            g.for_each_neighbor(RealId(u), &mut |v| list.push(v.0));
            list.sort_unstable();
            list
        })
        .collect();
    let mut bicliques: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();
    let mut rng = SplitMix64::new(cfg.seed);

    for _pass in 0..cfg.passes {
        let salts: Vec<u64> = (0..cfg.hashes).map(|_| rng.next_u64()).collect();
        // Cluster nodes by shingle signature.
        let mut clusters: FxHashMap<Vec<u64>, Vec<u32>> = FxHashMap::default();
        for u in 0..n as u32 {
            let list = &adj[u as usize];
            if list.len() < cfg.min_targets {
                continue;
            }
            let sig: Vec<u64> = salts.iter().map(|&s| minhash(list, s)).collect();
            let bucket = clusters.entry(sig).or_default();
            if bucket.len() < cfg.max_cluster {
                bucket.push(u);
            }
        }
        let mut extracted_this_pass = 0usize;
        for (_, members) in clusters {
            if members.len() < cfg.min_sources {
                continue;
            }
            // Greedy biclique extraction: seed with each member in turn.
            for &seed_node in &members {
                let seed_adj = adj[seed_node as usize].clone();
                if seed_adj.len() < cfg.min_targets {
                    continue;
                }
                // Common targets = intersection with every other member that
                // keeps the intersection above the threshold.
                let mut sources = vec![seed_node];
                let mut common = seed_adj;
                for &other in &members {
                    if other == seed_node || adj[other as usize].len() < cfg.min_targets {
                        continue;
                    }
                    let inter = intersect(&common, &adj[other as usize]);
                    if inter.len() >= cfg.min_targets {
                        common = inter;
                        sources.push(other);
                    }
                }
                // Benefit test: |A|*|B| edges replaced by |A|+|B|.
                if sources.len() >= cfg.min_sources
                    && common.len() >= cfg.min_targets
                    && sources.len() * common.len() > sources.len() + common.len()
                {
                    for &s in &sources {
                        remove_all(&mut adj[s as usize], &common);
                    }
                    bicliques.push((sources, common));
                    extracted_this_pass += 1;
                }
            }
        }
        if extracted_this_pass == 0 {
            break;
        }
    }

    // Assemble the condensed output.
    let mut b = CondensedBuilder::new(n);
    for (sources, targets) in &bicliques {
        let v = b.add_virtual();
        for &s in sources {
            b.real_to_virtual(RealId(s), v);
        }
        for &t in targets {
            b.virtual_to_real(v, RealId(t));
        }
    }
    for (u, list) in adj.iter().enumerate() {
        for &v in list {
            b.direct(RealId(u as u32), RealId(v));
        }
    }
    (Dedup1Graph::new_unchecked(b.build()), bicliques.len())
}

fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn remove_all(list: &mut Vec<u32>, remove: &[u32]) {
    list.retain(|x| remove.binary_search(x).is_err());
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_graph::{expand_to_edge_list, validate::validate_dedup1, CondensedBuilder};

    /// A graph with an embedded 5×5 biclique plus noise edges.
    fn biclique_graph() -> ExpandedGraph {
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in 5..10u32 {
                edges.push((a, b));
            }
        }
        edges.push((10, 11));
        edges.push((11, 10));
        ExpandedGraph::from_edges(12, edges)
    }

    #[test]
    fn lossless_compression() {
        let g = biclique_graph();
        let before = expand_to_edge_list(&g);
        let (compressed, found) = vminer(&g, VMinerConfig::default());
        assert_eq!(expand_to_edge_list(&compressed), before);
        assert!(found >= 1, "should find the embedded biclique");
        assert!(validate_dedup1(&compressed).is_ok());
        // 25 edges -> ~10 membership edges + 2 noise edges.
        assert!(compressed.stored_edge_count() < 25);
    }

    #[test]
    fn clique_heavy_graph_compresses_worse_than_native_dedup() {
        // The paper's point: VMiner, working on the expanded graph, finds a
        // worse representation than deduplication on the native condensed
        // structure. Overlapping cliques blur the biclique signatures.
        let mut b = CondensedBuilder::new(30);
        let ids: Vec<RealId> = (0..30).map(RealId).collect();
        b.clique(&ids[0..18]);
        b.clique(&ids[10..28]);
        let cdup = b.build();
        let exp = ExpandedGraph::from_rep(&cdup);
        let (vm, _) = vminer(&exp, VMinerConfig::default());
        assert_eq!(expand_to_edge_list(&vm), expand_to_edge_list(&cdup));
        let native = graphgen_dedup::greedy_virtual_nodes_first(
            &cdup,
            graphgen_common::VertexOrdering::Descending,
            0,
        );
        assert!(
            vm.stored_edge_count() >= native.stored_edge_count(),
            "vminer {} vs native {}",
            vm.stored_edge_count(),
            native.stored_edge_count()
        );
    }

    #[test]
    fn sparse_graph_untouched() {
        let g = ExpandedGraph::from_edges(6, [(0, 1), (2, 3), (4, 5)]);
        let (compressed, found) = vminer(&g, VMinerConfig::default());
        assert_eq!(found, 0);
        assert_eq!(compressed.stored_edge_count(), 3);
    }

    #[test]
    fn deterministic() {
        let g = biclique_graph();
        let (a, na) = vminer(&g, VMinerConfig::default());
        let (b, nb) = vminer(&g, VMinerConfig::default());
        assert_eq!(na, nb);
        assert_eq!(a.stored_edge_count(), b.stored_edge_count());
    }
}
