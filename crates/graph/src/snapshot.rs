//! Binary snapshot codecs for every in-memory representation.
//!
//! The serving layer persists extracted graphs to disk and recovers them
//! after a crash (see `graphgen-serve`). This module provides the
//! representation-level primitives of that snapshot format: a verbatim,
//! structure-preserving binary encoding of each of the five
//! representations plus [`Properties`], following the workspace codec
//! conventions (`graphgen_common::codec`: little-endian, length-prefixed,
//! bounds-checked decode).
//!
//! The encodings are **verbatim**: a decoded graph has exactly the stored
//! adjacency of the encoded one — same virtual-node numbering, same dead
//! slots, same bitmaps — so a recovered handle is byte-identical
//! (canonical serialization *and* structure) to the one that was
//! persisted. Encoding is deterministic (hash-map content is emitted in
//! sorted key order), so equal graphs produce equal bytes.
//!
//! Framing (magic header, format version, section layout for a whole
//! `GraphHandle`) lives one level up in `graphgen_core::serialize`; these
//! functions encode bare representation payloads.

use crate::api::GraphRep;
use crate::bitmap_rep::BitmapGraph;
use crate::cdup::CondensedGraph;
use crate::chunk::{AdjChunk, ChunkedAdj, CHUNK_LEN};
use crate::dedup1::Dedup1Graph;
use crate::dedup2::Dedup2Graph;
use crate::exp::ExpandedGraph;
use crate::ids::Adj;
use crate::properties::{PropValue, Properties};
use graphgen_common::codec::{self, CodecError, Reader};
use graphgen_common::{Bitmap, FxHashMap};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Small shared pieces
// ---------------------------------------------------------------------------

/// Encode a `Vec<bool>` as a bit-packed word array.
fn put_bools(out: &mut Vec<u8>, bits: &[bool]) {
    codec::put_len(out, bits.len());
    let mut word = 0u64;
    for (i, &b) in bits.iter().enumerate() {
        if b {
            word |= 1 << (i % 64);
        }
        if i % 64 == 63 {
            codec::put_u64(out, word);
            word = 0;
        }
    }
    if !bits.len().is_multiple_of(64) {
        codec::put_u64(out, word);
    }
}

fn read_bools(r: &mut Reader<'_>) -> Result<Vec<bool>, CodecError> {
    // The count is in BITS (~1/8 byte each), so `Reader::len`'s
    // byte-per-element plausibility bound does not apply; bound it against
    // the 64-bit word payload instead.
    let at = r.pos();
    let n = r.scalar()?;
    if n.div_ceil(64) > r.remaining() / 8 {
        return Err(CodecError::invalid(at, "bit count exceeds remaining input"));
    }
    let mut bits = Vec::with_capacity(n);
    let mut word = 0u64;
    for i in 0..n {
        if i % 64 == 0 {
            word = r.u64()?;
        }
        bits.push((word >> (i % 64)) & 1 == 1);
    }
    Ok(bits)
}

/// Encode a list-of-sorted-u32-lists adjacency structure.
fn put_lists(out: &mut Vec<u8>, lists: &[Vec<u32>]) {
    codec::put_len(out, lists.len());
    for list in lists {
        codec::put_len(out, list.len());
        for &v in list {
            codec::put_u32(out, v);
        }
    }
}

/// Decode an adjacency structure, checking each entry is `< bound` and each
/// list is strictly sorted (the invariant every representation maintains).
fn read_lists(r: &mut Reader<'_>, bound: u32, what: &str) -> Result<Vec<Vec<u32>>, CodecError> {
    let n = r.len_of(8)?;
    let mut lists = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.len_of(4)?;
        let mut list = Vec::with_capacity(len);
        for _ in 0..len {
            let at = r.pos();
            let v = r.u32()?;
            if v >= bound {
                return Err(CodecError::invalid(
                    at,
                    format!("{what} target {v} out of range {bound}"),
                ));
            }
            if let Some(&prev) = list.last() {
                if prev >= v {
                    return Err(CodecError::invalid(
                        at,
                        format!("{what} list not strictly sorted"),
                    ));
                }
            }
            list.push(v);
        }
        lists.push(list);
    }
    Ok(lists)
}

fn count_alive(alive: &[bool]) -> usize {
    alive.iter().filter(|&&a| a).count()
}

// ---------------------------------------------------------------------------
// Chunk table: structurally shared adjacency on disk
// ---------------------------------------------------------------------------

/// Collects the [`AdjChunk`]s referenced while encoding a snapshot and
/// deduplicates them: a chunk shared by several [`ChunkedAdj`] stores (or
/// merely byte-identical to an earlier one) is written **once**; stores
/// reference chunks by table index. [`ChunkDecoder`] rebuilds shared ids as
/// shared `Arc`s, so the structural sharing survives the disk round-trip.
///
/// Usage: encode every chunk-bearing section into a *body* buffer with one
/// encoder, then emit [`ChunkEncoder::finish_into`] (the chunk table)
/// **before** the body — decoding reads the table first.
#[derive(Debug, Default)]
pub struct ChunkEncoder {
    /// Fast path: chunks already interned, by allocation identity.
    by_ptr: FxHashMap<*const AdjChunk, u32>,
    /// Content dedup: byte-identical chunks from distinct allocations.
    /// Holds the single copy of each payload; [`ChunkEncoder::finish_into`]
    /// emits them in id order.
    by_bytes: FxHashMap<Vec<u8>, u32>,
    next_id: u32,
}

impl ChunkEncoder {
    /// A fresh, empty chunk table.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern(&mut self, chunk: &Arc<AdjChunk>) -> u32 {
        let ptr = Arc::as_ptr(chunk);
        if let Some(&id) = self.by_ptr.get(&ptr) {
            return id;
        }
        let mut payload = Vec::new();
        codec::put_len(&mut payload, chunk.n_lists());
        for list in chunk.lists() {
            codec::put_len(&mut payload, list.len());
            for a in list {
                codec::put_u32(&mut payload, a.raw());
            }
        }
        let next = self.next_id;
        let id = match self.by_bytes.entry(payload) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(next);
                self.next_id += 1;
                next
            }
        };
        self.by_ptr.insert(ptr, id);
        id
    }

    /// Encode a [`ChunkedAdj`] store as its length plus chunk references,
    /// interning each chunk into the table.
    pub fn encode_chunked(&mut self, adj: &ChunkedAdj, out: &mut Vec<u8>) {
        codec::put_len(out, adj.len());
        for chunk in adj.chunks() {
            codec::put_u32(out, self.intern(chunk));
        }
    }

    /// Emit the chunk table section (chunk capacity, count, payloads in
    /// id order).
    pub fn finish_into(self, out: &mut Vec<u8>) {
        codec::put_len(out, CHUNK_LEN);
        codec::put_len(out, self.by_bytes.len());
        let mut payloads: Vec<(&Vec<u8>, u32)> =
            self.by_bytes.iter().map(|(p, &id)| (p, id)).collect();
        payloads.sort_by_key(|&(_, id)| id);
        for (p, _) in payloads {
            out.extend_from_slice(p);
        }
    }
}

/// The decoded chunk table: resolves chunk references back to shared
/// [`Arc<AdjChunk>`]s (inverse of [`ChunkEncoder`]).
#[derive(Debug)]
pub struct ChunkDecoder {
    chunks: Vec<Arc<AdjChunk>>,
}

impl ChunkDecoder {
    /// Parse the chunk table section. Validates chunk shape and list
    /// sortedness here (once per chunk); target *ranges* depend on the
    /// referencing graph and are validated per reference in
    /// [`ChunkDecoder::decode_chunked`].
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let at = r.pos();
        let cap = r.scalar()?;
        if cap != CHUNK_LEN {
            return Err(CodecError::invalid(
                at,
                format!("chunk capacity {cap} != {CHUNK_LEN}"),
            ));
        }
        let n = r.len()?;
        let mut chunks = Vec::with_capacity(n);
        for _ in 0..n {
            let at = r.pos();
            let n_lists = r.len_of(8)?;
            if n_lists > CHUNK_LEN {
                return Err(CodecError::invalid(at, "chunk holds too many lists"));
            }
            let mut chunk = AdjChunk::default();
            for _ in 0..n_lists {
                let len = r.len_of(4)?;
                let mut list: Vec<Adj> = Vec::with_capacity(len);
                for _ in 0..len {
                    let at = r.pos();
                    let a = Adj::from_raw(r.u32()?);
                    if let Some(&prev) = list.last() {
                        if prev.raw() >= a.raw() {
                            return Err(CodecError::invalid(
                                at,
                                "chunk adjacency not strictly sorted",
                            ));
                        }
                    }
                    list.push(a);
                }
                chunk.push_list(&list);
            }
            chunks.push(Arc::new(chunk));
        }
        Ok(Self { chunks })
    }

    /// Number of distinct chunks in the table.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Decode a [`ChunkedAdj`] store: its length plus chunk references.
    /// Shared references resolve to the **same** `Arc`. Validates the
    /// shape invariant (full chunks, short tail) and that every target is
    /// `< n_real` / `< n_virt` for the referencing graph.
    pub fn decode_chunked(
        &self,
        r: &mut Reader<'_>,
        n_real: u32,
        n_virt: u32,
        what: &str,
    ) -> Result<ChunkedAdj, CodecError> {
        // The store length counts *lists*, which live in the already-read
        // chunk table — only `len / CHUNK_LEN` 4-byte references follow, so
        // `Reader::len`'s remaining-input bound does not apply to it.
        let at = r.pos();
        let len = r.scalar()?;
        let n_chunks = len.div_ceil(CHUNK_LEN);
        if n_chunks > r.remaining() / 4 {
            return Err(CodecError::invalid(
                at,
                format!("{what} chunk reference count exceeds remaining input"),
            ));
        }
        let mut chunks = Vec::with_capacity(n_chunks);
        for i in 0..n_chunks {
            let at = r.pos();
            let id = r.u32()? as usize;
            let chunk = self
                .chunks
                .get(id)
                .ok_or_else(|| CodecError::invalid(at, format!("{what} chunk id out of range")))?;
            let expect = if i + 1 < n_chunks {
                CHUNK_LEN
            } else {
                len - (n_chunks - 1) * CHUNK_LEN
            };
            if chunk.n_lists() != expect {
                return Err(CodecError::invalid(
                    at,
                    format!("{what} chunk shape mismatch"),
                ));
            }
            for list in chunk.lists() {
                for a in list {
                    let ok = match (a.as_real(), a.as_virtual()) {
                        (Some(u), _) => u.0 < n_real,
                        (_, Some(v)) => v.0 < n_virt,
                        _ => unreachable!("Adj is always one of the two"),
                    };
                    if !ok {
                        return Err(CodecError::invalid(
                            at,
                            format!("{what} adjacency target out of range"),
                        ));
                    }
                }
            }
            chunks.push(Arc::clone(chunk));
        }
        Ok(ChunkedAdj::from_chunks(chunks, len))
    }
}

// ---------------------------------------------------------------------------
// C-DUP (also the core of DEDUP-1 and BITMAP)
// ---------------------------------------------------------------------------

/// Encode a [`CondensedGraph`] verbatim (real adjacency, virtual adjacency,
/// liveness bits). Adjacency chunks are interned into `enc`'s chunk table
/// — shared or byte-identical chunks are written once across the whole
/// snapshot.
pub fn encode_condensed(g: &CondensedGraph, enc: &mut ChunkEncoder, out: &mut Vec<u8>) {
    codec::put_len(out, g.num_real_slots());
    codec::put_len(out, g.num_virtual());
    put_bools(out, &g.alive);
    enc.encode_chunked(&g.real_out, out);
    enc.encode_chunked(&g.virt_out, out);
}

/// Decode a [`CondensedGraph`] (inverse of [`encode_condensed`]).
pub fn decode_condensed(
    r: &mut Reader<'_>,
    dec: &ChunkDecoder,
) -> Result<CondensedGraph, CodecError> {
    let at = r.pos();
    // Node counts describe chunk-table content, not upcoming body bytes:
    // plain scalars, bounded below by the liveness/adjacency consistency
    // checks.
    let n_real = r.scalar()?;
    let n_virt = r.scalar()?;
    if n_real > u32::MAX as usize || n_virt > u32::MAX as usize {
        return Err(CodecError::invalid(at, "node count overflows u32"));
    }
    let alive = read_bools(r)?;
    if alive.len() != n_real {
        return Err(CodecError::invalid(at, "liveness length mismatch"));
    }
    let real_out = dec.decode_chunked(r, n_real as u32, n_virt as u32, "real")?;
    let virt_out = dec.decode_chunked(r, n_real as u32, n_virt as u32, "virtual")?;
    if real_out.len() != n_real || virt_out.len() != n_virt {
        return Err(CodecError::invalid(at, "adjacency length mismatch"));
    }
    Ok(CondensedGraph::from_chunked(real_out, virt_out, alive))
}

// ---------------------------------------------------------------------------
// EXP
// ---------------------------------------------------------------------------

/// Encode an [`ExpandedGraph`] verbatim (both adjacency directions and the
/// liveness bits are stored, so lazily deleted targets survive the trip).
pub fn encode_expanded(g: &ExpandedGraph, out: &mut Vec<u8>) {
    put_bools(out, &g.alive);
    put_lists(out, &g.out);
    put_lists(out, &g.inc);
}

/// Decode an [`ExpandedGraph`] (inverse of [`encode_expanded`]).
pub fn decode_expanded(r: &mut Reader<'_>) -> Result<ExpandedGraph, CodecError> {
    let at = r.pos();
    let alive = read_bools(r)?;
    let n = alive.len();
    if n > u32::MAX as usize {
        return Err(CodecError::invalid(at, "node count overflows u32"));
    }
    let out = read_lists(r, n as u32, "out")?;
    let inc = read_lists(r, n as u32, "in")?;
    if out.len() != n || inc.len() != n {
        return Err(CodecError::invalid(at, "adjacency length mismatch"));
    }
    let n_alive = count_alive(&alive);
    Ok(ExpandedGraph {
        out,
        inc,
        alive,
        n_alive,
    })
}

// ---------------------------------------------------------------------------
// DEDUP-1
// ---------------------------------------------------------------------------

/// Encode a [`Dedup1Graph`] (its condensed core, whose deduplication
/// invariant the decode trusts — the bytes came from a validated graph).
pub fn encode_dedup1(g: &Dedup1Graph, enc: &mut ChunkEncoder, out: &mut Vec<u8>) {
    encode_condensed(g.as_condensed(), enc, out);
}

/// Decode a [`Dedup1Graph`] (inverse of [`encode_dedup1`]).
pub fn decode_dedup1(r: &mut Reader<'_>, dec: &ChunkDecoder) -> Result<Dedup1Graph, CodecError> {
    Ok(Dedup1Graph::new_unchecked(decode_condensed(r, dec)?))
}

// ---------------------------------------------------------------------------
// DEDUP-2
// ---------------------------------------------------------------------------

/// Encode a [`Dedup2Graph`] verbatim (memberships, members, virtual-virtual
/// and direct edges, liveness).
pub fn encode_dedup2(g: &Dedup2Graph, out: &mut Vec<u8>) {
    codec::put_len(out, g.members.len());
    put_bools(out, &g.alive);
    put_lists(out, &g.memberships);
    put_lists(out, &g.members);
    put_lists(out, &g.vv);
    put_lists(out, &g.direct);
}

/// Decode a [`Dedup2Graph`] (inverse of [`encode_dedup2`]).
pub fn decode_dedup2(r: &mut Reader<'_>) -> Result<Dedup2Graph, CodecError> {
    let at = r.pos();
    let n_virt = r.len()?;
    let alive = read_bools(r)?;
    let n_real = alive.len();
    if n_real > u32::MAX as usize || n_virt > u32::MAX as usize {
        return Err(CodecError::invalid(at, "node count overflows u32"));
    }
    let memberships = read_lists(r, n_virt as u32, "membership")?;
    let members = read_lists(r, n_real as u32, "member")?;
    let vv = read_lists(r, n_virt as u32, "virtual-virtual")?;
    let direct = read_lists(r, n_real as u32, "direct")?;
    if memberships.len() != n_real
        || direct.len() != n_real
        || members.len() != n_virt
        || vv.len() != n_virt
    {
        return Err(CodecError::invalid(at, "section length mismatch"));
    }
    let n_alive = count_alive(&alive);
    Ok(Dedup2Graph {
        memberships,
        members,
        vv,
        direct,
        alive,
        n_alive,
    })
}

// ---------------------------------------------------------------------------
// BITMAP
// ---------------------------------------------------------------------------

/// Encode a [`BitmapGraph`] verbatim: its condensed core plus, per virtual
/// node, the per-source traversal bitmaps (in ascending source order, so
/// the bytes are deterministic).
pub fn encode_bitmap(g: &BitmapGraph, enc: &mut ChunkEncoder, out: &mut Vec<u8>) {
    encode_condensed(&g.core, enc, out);
    codec::put_len(out, g.bitmaps.len());
    for map in &g.bitmaps {
        let mut sources: Vec<u32> = map.keys().copied().collect();
        sources.sort_unstable();
        codec::put_len(out, sources.len());
        for src in sources {
            let bm = &map[&src];
            codec::put_u32(out, src);
            codec::put_len(out, bm.len());
            for &w in bm.words() {
                codec::put_u64(out, w);
            }
        }
    }
}

/// Decode a [`BitmapGraph`] (inverse of [`encode_bitmap`]).
pub fn decode_bitmap(r: &mut Reader<'_>, dec: &ChunkDecoder) -> Result<BitmapGraph, CodecError> {
    let core = decode_condensed(r, dec)?;
    let at = r.pos();
    let n_virt = r.len()?;
    if n_virt != core.num_virtual() {
        return Err(CodecError::invalid(
            at,
            "bitmap section does not match virtual count",
        ));
    }
    let n_real = core.num_real_slots() as u32;
    let mut bitmaps = Vec::with_capacity(n_virt);
    for v in 0..n_virt {
        let count = r.len_of(4)?;
        let mut map: FxHashMap<u32, Bitmap> = FxHashMap::default();
        for _ in 0..count {
            let at = r.pos();
            let src = r.u32()?;
            if src >= n_real {
                return Err(CodecError::invalid(at, "bitmap source out of range"));
            }
            // The stored count is in BITS (~1/8 byte each), so the
            // byte-based plausibility check of `Reader::len` does not
            // apply; bound it against the word payload instead.
            let bits = usize::try_from(r.u64()?)
                .map_err(|_| CodecError::invalid(at, "bitmap length overflows"))?;
            if bits.div_ceil(64) > r.remaining() / 8 {
                return Err(CodecError::invalid(
                    at,
                    "bitmap longer than remaining input",
                ));
            }
            if bits != core.virt_out(crate::ids::VirtId(v as u32)).len() {
                return Err(CodecError::invalid(
                    at,
                    "bitmap length does not match out-degree",
                ));
            }
            let mut words = Vec::with_capacity(bits.div_ceil(64));
            for _ in 0..bits.div_ceil(64) {
                words.push(r.u64()?);
            }
            let bm = Bitmap::from_words(words, bits)
                .ok_or_else(|| CodecError::invalid(at, "bitmap word count mismatch"))?;
            if map.insert(src, bm).is_some() {
                return Err(CodecError::invalid(at, "duplicate bitmap source"));
            }
        }
        bitmaps.push(map);
    }
    Ok(BitmapGraph { core, bitmaps })
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

/// Encode one [`PropValue`] (tag byte + payload).
pub fn encode_prop_value(p: &PropValue, out: &mut Vec<u8>) {
    match p {
        PropValue::Int(v) => {
            codec::put_u8(out, 0);
            codec::put_i64(out, *v);
        }
        PropValue::Float(v) => {
            codec::put_u8(out, 1);
            codec::put_f64(out, *v);
        }
        PropValue::Text(s) => {
            codec::put_u8(out, 2);
            codec::put_str(out, s);
        }
    }
}

/// Decode one [`PropValue`] (inverse of [`encode_prop_value`]).
pub fn decode_prop_value(r: &mut Reader<'_>) -> Result<PropValue, CodecError> {
    let at = r.pos();
    Ok(match r.u8()? {
        0 => PropValue::Int(r.i64()?),
        1 => PropValue::Float(r.f64()?),
        2 => PropValue::Text(r.str()?.to_string()),
        tag => return Err(CodecError::invalid(at, format!("bad property tag {tag}"))),
    })
}

/// Encode a [`Properties`] store (columns in sorted name order; each cell a
/// presence tag plus the value).
pub fn encode_properties(p: &Properties, out: &mut Vec<u8>) {
    codec::put_len(out, p.n);
    let mut names: Vec<&String> = p.columns.keys().collect();
    names.sort();
    codec::put_len(out, names.len());
    for name in names {
        codec::put_str(out, name);
        for cell in &p.columns[name.as_str()] {
            match cell {
                None => codec::put_u8(out, 0),
                Some(v) => {
                    codec::put_u8(out, 1);
                    encode_prop_value(v, out);
                }
            }
        }
    }
}

/// Decode a [`Properties`] store (inverse of [`encode_properties`]).
pub fn decode_properties(r: &mut Reader<'_>) -> Result<Properties, CodecError> {
    // The slot count is a scalar: a store can cover many vertices while
    // carrying zero columns (and so almost no bytes). Each *column* then
    // holds `n` presence-tagged cells, which the per-cell reads bound.
    let at = r.pos();
    let n = r.scalar()?;
    let ncols = r.len()?;
    if ncols > 0 && n > 0 && n > r.remaining() {
        // With at least one column, n cells (>= 1 byte each) must follow.
        return Err(CodecError::invalid(
            at,
            "property slot count exceeds remaining input",
        ));
    }
    let mut columns: FxHashMap<String, Vec<Option<PropValue>>> = FxHashMap::default();
    for _ in 0..ncols {
        let at = r.pos();
        let name = r.str()?.to_string();
        let mut col = Vec::with_capacity(n);
        for _ in 0..n {
            let at = r.pos();
            col.push(match r.u8()? {
                0 => None,
                1 => Some(decode_prop_value(r)?),
                tag => return Err(CodecError::invalid(at, format!("bad presence tag {tag}"))),
            });
        }
        if columns.insert(name, col).is_some() {
            return Err(CodecError::invalid(at, "duplicate property column"));
        }
    }
    Ok(Properties { n, columns })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CondensedBuilder;
    use crate::ids::RealId;
    use crate::{expand_to_edge_list, RepKind};

    fn sample_condensed() -> CondensedGraph {
        let mut b = CondensedBuilder::new(6);
        b.clique(&[RealId(0), RealId(1), RealId(3)]);
        b.clique(&[RealId(2), RealId(3), RealId(4)]);
        b.direct(RealId(5), RealId(0));
        let mut g = b.build();
        g.delete_vertex(RealId(4)); // keep a dead slot in the snapshot
        g
    }

    fn roundtrip<T>(
        encode: impl Fn(&T, &mut Vec<u8>),
        decode: impl Fn(&mut Reader<'_>) -> Result<T, CodecError>,
        g: &T,
    ) -> T {
        let mut buf = Vec::new();
        encode(g, &mut buf);
        let mut r = Reader::new(&buf);
        let back = decode(&mut r).expect("decode");
        r.expect_end().expect("no trailing bytes");
        // Determinism: re-encoding yields the same bytes.
        let mut again = Vec::new();
        encode(&back, &mut again);
        assert_eq!(buf, again, "re-encode differs");
        back
    }

    /// Assemble a self-contained buffer for one chunk-bearing payload:
    /// chunk table first, body after — the same layout `graphgen_core`'s
    /// snapshot framing uses.
    fn assemble<T>(encode: &impl Fn(&T, &mut ChunkEncoder, &mut Vec<u8>), g: &T) -> Vec<u8> {
        let mut enc = ChunkEncoder::new();
        let mut body = Vec::new();
        encode(g, &mut enc, &mut body);
        let mut buf = Vec::new();
        enc.finish_into(&mut buf);
        buf.extend_from_slice(&body);
        buf
    }

    fn roundtrip_chunked<T>(
        encode: impl Fn(&T, &mut ChunkEncoder, &mut Vec<u8>),
        decode: impl Fn(&mut Reader<'_>, &ChunkDecoder) -> Result<T, CodecError>,
        g: &T,
    ) -> T {
        let buf = assemble(&encode, g);
        let mut r = Reader::new(&buf);
        let dec = ChunkDecoder::decode(&mut r).expect("chunk table");
        let back = decode(&mut r, &dec).expect("decode");
        r.expect_end().expect("no trailing bytes");
        // Determinism: re-encoding yields the same bytes.
        assert_eq!(assemble(&encode, &back), buf, "re-encode differs");
        back
    }

    #[test]
    fn condensed_roundtrip_is_verbatim() {
        let g = sample_condensed();
        let back = roundtrip_chunked(encode_condensed, decode_condensed, &g);
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert_eq!(back.num_virtual(), g.num_virtual());
        for u in 0..g.num_real_slots() as u32 {
            assert_eq!(back.real_out(RealId(u)), g.real_out(RealId(u)));
            assert_eq!(back.is_alive(RealId(u)), g.is_alive(RealId(u)));
        }
        assert_eq!(expand_to_edge_list(&back), expand_to_edge_list(&g));
    }

    #[test]
    fn expanded_roundtrip_keeps_lazy_deletes() {
        let mut g = ExpandedGraph::from_rep(&sample_condensed());
        g.delete_vertex(RealId(1));
        let back = roundtrip(encode_expanded, decode_expanded, &g);
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert_eq!(expand_to_edge_list(&back), expand_to_edge_list(&g));
        // Lazily deleted targets survive verbatim (revive works after decode).
        let mut revived_a = back.clone();
        let mut revived_b = g.clone();
        revived_a.revive_vertex(RealId(1));
        revived_b.revive_vertex(RealId(1));
        assert_eq!(
            expand_to_edge_list(&revived_a),
            expand_to_edge_list(&revived_b)
        );
    }

    #[test]
    fn dedup1_and_dedup2_roundtrip() {
        let mut b = CondensedBuilder::new(5);
        b.clique(&[RealId(0), RealId(1), RealId(3)]);
        b.clique(&[RealId(2), RealId(3), RealId(4)]);
        let d1 = Dedup1Graph::new_unchecked(b.build());
        let back = roundtrip_chunked(encode_dedup1, decode_dedup1, &d1);
        assert_eq!(back.kind(), RepKind::Dedup1);
        assert_eq!(expand_to_edge_list(&back), expand_to_edge_list(&d1));

        let mut d2 = Dedup2Graph::new(9);
        let w1 = d2.add_virtual(vec![0, 1, 2]);
        let w2 = d2.add_virtual(vec![3, 4, 5]);
        d2.add_virtual_edge(w1, w2);
        d2.add_edge(RealId(6), RealId(7));
        d2.delete_vertex(RealId(8));
        let back = roundtrip(encode_dedup2, decode_dedup2, &d2);
        assert_eq!(back.kind(), RepKind::Dedup2);
        assert_eq!(back.num_vertices(), d2.num_vertices());
        assert_eq!(expand_to_edge_list(&back), expand_to_edge_list(&d2));
    }

    #[test]
    fn bitmap_roundtrip_keeps_masks() {
        let mut b = CondensedBuilder::new(4);
        let p1 = b.clique(&[RealId(0), RealId(1)]);
        b.clique(&[RealId(0), RealId(1), RealId(2)]);
        let mut g = BitmapGraph::new_unmasked(b.build());
        let mut m = Bitmap::ones(2);
        m.unset(0);
        m.unset(1);
        g.set_bitmap(p1, RealId(0), m);
        let back = roundtrip_chunked(encode_bitmap, decode_bitmap, &g);
        assert_eq!(back.bitmap_count(), g.bitmap_count());
        assert_eq!(back.bitmap(p1, RealId(0)), g.bitmap(p1, RealId(0)));
        // Masked traversal is identical.
        let collect = |g: &BitmapGraph| {
            let mut seen = Vec::new();
            g.for_each_neighbor(RealId(0), &mut |r| seen.push(r.0));
            seen
        };
        assert_eq!(collect(&back), collect(&g));
    }

    /// Regression: the bitmap length is a BIT count; a byte-based
    /// plausibility bound used to reject any mask with more bits than
    /// trailing bytes.
    #[test]
    fn bitmap_roundtrip_with_wide_masks() {
        let mut b = CondensedBuilder::new(130);
        let members: Vec<RealId> = (0..128).map(RealId).collect();
        let v = b.clique(&members);
        let mut g = BitmapGraph::new_unmasked(b.build());
        let mut m = Bitmap::ones(128);
        m.unset(0);
        g.set_bitmap(v, RealId(0), m);
        let back = roundtrip_chunked(encode_bitmap, decode_bitmap, &g);
        assert_eq!(back.bitmap(v, RealId(0)), g.bitmap(v, RealId(0)));
    }

    #[test]
    fn properties_roundtrip() {
        let mut p = Properties::new(3);
        p.set(RealId(0), "name", PropValue::Text("a\"b".into()));
        p.set(RealId(2), "score", PropValue::Float(2.25));
        p.set(RealId(1), "age", PropValue::Int(-3));
        let back = roundtrip(encode_properties, decode_properties, &p);
        assert_eq!(back.len(), 3);
        assert_eq!(back.get(RealId(0), "name"), p.get(RealId(0), "name"));
        assert_eq!(back.get(RealId(2), "score"), p.get(RealId(2), "score"));
        assert_eq!(back.get(RealId(1), "age"), p.get(RealId(1), "age"));
        assert_eq!(back.get(RealId(1), "name"), None);
    }

    #[test]
    fn corrupt_input_is_rejected_not_panicking() {
        let g = sample_condensed();
        let buf = assemble(&encode_condensed, &g);
        let try_decode = |bytes: &[u8]| {
            let mut r = Reader::new(bytes);
            let dec = ChunkDecoder::decode(&mut r)?;
            decode_condensed(&mut r, &dec)
        };
        // Truncations at every prefix either decode cleanly (never, given
        // trailing data checks happen in the caller) or error — no panic.
        for cut in 0..buf.len() {
            let _ = try_decode(&buf[..cut]);
        }
        // Flip each byte and make sure decode never panics.
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0xFF;
            let _ = try_decode(&bad);
        }
    }

    /// Identical chunks — whether `Arc`-shared between two stores or merely
    /// byte-identical from distinct allocations — are written to the chunk
    /// table once, and decode rebuilds every referencing store onto the
    /// **same** `Arc`.
    #[test]
    fn shared_chunks_are_written_once_and_rebuilt_shared() {
        use crate::chunk::CHUNK_LEN;
        // 3 full chunks of real slots, every list identical across chunks
        // (each node points at virtual node 0) -> the per-store payload
        // dedups to ONE distinct real chunk; plus one virtual chunk.
        let n = CHUNK_LEN * 3;
        let mut b = CondensedBuilder::new(n);
        let v = b.add_virtual();
        for u in 0..n as u32 {
            b.real_to_virtual(RealId(u), v);
        }
        let g = b.build();
        // Encode the graph AND a clone through one encoder — the clone
        // shares every Arc, modelling the graph + incremental-shadow pair
        // inside one handle snapshot.
        let clone = g.clone();
        let mut enc = ChunkEncoder::new();
        let mut body = Vec::new();
        encode_condensed(&g, &mut enc, &mut body);
        encode_condensed(&clone, &mut enc, &mut body);
        let mut buf = Vec::new();
        enc.finish_into(&mut buf);
        buf.extend_from_slice(&body);

        let mut r = Reader::new(&buf);
        let dec = ChunkDecoder::decode(&mut r).expect("chunk table");
        // 6 referenced real chunks + 2 virtual references, all collapsing
        // to 1 real + 1 virtual distinct payload.
        assert_eq!(dec.chunk_count(), 2, "identical chunks not deduplicated");
        let back_a = decode_condensed(&mut r, &dec).expect("decode a");
        let back_b = decode_condensed(&mut r, &dec).expect("decode b");
        r.expect_end().expect("no trailing bytes");
        // Rebuilt shared: across the two stores *and* within one store.
        assert_eq!(
            back_a
                .real_out_chunks()
                .shared_chunks_with(back_b.real_out_chunks()),
            3
        );
        assert!(std::sync::Arc::ptr_eq(
            &back_a.real_out_chunks().chunks()[0],
            &back_a.real_out_chunks().chunks()[1]
        ));
        assert_eq!(expand_to_edge_list(&back_a), expand_to_edge_list(&g));
        assert_eq!(expand_to_edge_list(&back_b), expand_to_edge_list(&g));
    }

    /// A decoded graph stays fully mutable: writing through the CoW surface
    /// after decode must not disturb sibling stores rebuilt on shared
    /// chunks.
    #[test]
    fn decoded_shared_chunks_cow_on_write() {
        use crate::chunk::CHUNK_LEN;
        let n = CHUNK_LEN * 2;
        let mut b = CondensedBuilder::new(n);
        let v = b.add_virtual();
        for u in 0..n as u32 {
            b.real_to_virtual(RealId(u), v);
        }
        let g = b.build();
        let mut back = roundtrip_chunked(encode_condensed, decode_condensed, &g);
        // Both chunks decode to one Arc; a write must unshare only one.
        back.insert_direct(RealId(0), RealId(1));
        assert!(back.exists_edge(RealId(0), RealId(1)));
        // Slot CHUNK_LEN lives in the *other* (still shared) chunk and is
        // untouched.
        assert_eq!(
            back.real_out(RealId(CHUNK_LEN as u32)),
            g.real_out(RealId(CHUNK_LEN as u32))
        );
    }
}
