//! Table schemas.

use crate::error::{DbError, DbResult};
use crate::value::{DataType, Value};
use graphgen_common::codec::{self, CodecError, Reader};

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (case-sensitive).
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Column {
    /// Shorthand constructor.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Self {
            name: name.into(),
            dtype,
        }
    }

    /// An integer column.
    pub fn int(name: impl Into<String>) -> Self {
        Self::new(name, DataType::Int)
    }

    /// A string column.
    pub fn str(name: impl Into<String>) -> Self {
        Self::new(name, DataType::Str)
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema from columns. Column names must be unique.
    pub fn new(columns: Vec<Column>) -> Self {
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            assert!(seen.insert(c.name.clone()), "duplicate column `{}`", c.name);
        }
        Self { columns }
    }

    /// The columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Append the binary encoding of this schema (column count, then each
    /// column's name and type tag). Part of the service database snapshot.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_len(out, self.columns.len());
        for c in &self.columns {
            codec::put_str(out, &c.name);
            codec::put_u8(out, matches!(c.dtype, DataType::Str) as u8);
        }
    }

    /// Decode one schema (inverse of [`Schema::encode_into`]).
    pub fn decode(r: &mut Reader<'_>) -> Result<Schema, CodecError> {
        let n = r.len()?;
        let mut columns = Vec::with_capacity(n);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            let at = r.pos();
            let name = r.str()?.to_string();
            if !seen.insert(name.clone()) {
                return Err(CodecError::invalid(
                    at,
                    format!("duplicate column `{name}`"),
                ));
            }
            let dtype = match r.u8()? {
                0 => DataType::Int,
                1 => DataType::Str,
                tag => return Err(CodecError::invalid(at, format!("bad dtype tag {tag}"))),
            };
            columns.push(Column { name, dtype });
        }
        Ok(Schema { columns })
    }

    /// Validate a row against this schema: the arity must match and every
    /// non-NULL value must have its column's type (NULL fits anywhere).
    pub fn check_row(&self, row: &[Value]) -> DbResult<()> {
        if row.len() != self.arity() {
            return Err(DbError::SchemaMismatch(format!(
                "expected {} values, got {}",
                self.arity(),
                row.len()
            )));
        }
        for (i, v) in row.iter().enumerate() {
            if let Some(dt) = v.data_type() {
                if dt != self.columns[i].dtype {
                    return Err(DbError::SchemaMismatch(format!(
                        "column `{}` expects {}, got {}",
                        self.columns[i].name, self.columns[i].dtype, dt
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_lookup() {
        let s = Schema::new(vec![Column::int("id"), Column::str("name")]);
        assert_eq!(s.index_of("id"), Some(0));
        assert_eq!(s.index_of("name"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.column(1).dtype, DataType::Str);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_rejected() {
        Schema::new(vec![Column::int("id"), Column::str("id")]);
    }
}
