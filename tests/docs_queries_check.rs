//! Documentation ↔ checker lockstep (readme_sync-style, for the DSL):
//!
//! * every ` ```ggd ` fenced block in `docs/DSL.md` and `README.md` must
//!   check **clean** against the documentation schema;
//! * every ` ```ggd-error CODE ` block must produce **exactly** that
//!   diagnostic code;
//! * every `examples/queries/*.ggd` file must check clean (warning-free)
//!   against its sibling `.ggs` schema, and the query files must stay in
//!   lockstep with the `graphgen_datagen` query constants and the inline
//!   queries the examples run.

use graphgen::dsl::{check_source, CheckCatalog, CheckOptions, Severity};
use std::path::Path;

fn repo_file(rel: &str) -> String {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(root.join(rel)).unwrap_or_else(|e| panic!("read {rel}: {e}"))
}

/// The schema every documentation snippet is checked against: the union
/// of all relations the docs mention.
fn doc_catalog() -> CheckCatalog {
    CheckCatalog::parse(
        "table Author(id: int, name: str)\n\
         table AuthorPub(aid: int, pid: int)\n\
         table Customer(custkey: int, name: str)\n\
         table Orders(orderkey: int, custkey: int)\n\
         table LineItem(orderkey: int, partkey: int)\n\
         table Instructor(id: int, name: str)\n\
         table Student(id: int, name: str)\n\
         table TaughtCourse(iid: int, cid: int)\n\
         table TookCourse(sid: int, cid: int)\n\
         table Person(id: int, name: str)\n\
         table Cast(person: int, movie: int, role: str)\n",
    )
    .expect("doc catalog parses")
}

/// Every fenced block whose info string starts with `tag`, as
/// `(info_rest, body)` — e.g. `fences(text, "ggd-error")` yields
/// `("E001", "Nodes…")` for a ` ```ggd-error E001 ` block.
fn fences(text: &str, tag: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut lines = text.lines();
    while let Some(line) = lines.next() {
        let trimmed = line.trim_start();
        let Some(info) = trimmed.strip_prefix("```") else {
            continue;
        };
        let info = info.trim();
        let (fence_tag, rest) = match info.split_once(char::is_whitespace) {
            Some((t, r)) => (t, r.trim()),
            None => (info, ""),
        };
        let mut body = String::new();
        for body_line in lines.by_ref() {
            if body_line.trim_start().starts_with("```") {
                break;
            }
            body.push_str(body_line);
            body.push('\n');
        }
        if fence_tag == tag {
            out.push((rest.to_string(), body));
        }
    }
    out
}

#[test]
fn doc_ggd_blocks_check_clean() {
    let catalog = doc_catalog();
    let mut opts = CheckOptions::default();
    opts.enable_lint("all").unwrap();
    let mut seen = 0;
    for file in ["docs/DSL.md", "README.md"] {
        for (_, body) in fences(&repo_file(file), "ggd") {
            seen += 1;
            let report = check_source(&body, Some(&catalog), &CheckOptions::default());
            assert!(
                report.diagnostics.is_empty(),
                "{file}: ```ggd block must check clean, got {:?}\n{body}",
                report.diagnostics
            );
            // Even with every lint group on, documented queries must only
            // ever *warn* — the docs never show a broken program as valid.
            let report = check_source(&body, Some(&catalog), &opts);
            assert!(!report.has_errors(), "{file}: {:?}", report.diagnostics);
        }
    }
    assert!(
        seen >= 4,
        "expected the documented Q1-Q3 (+README) ggd blocks"
    );
}

#[test]
fn doc_ggd_error_blocks_produce_exactly_their_code() {
    let catalog = doc_catalog();
    let mut seen = 0;
    for file in ["docs/DSL.md", "README.md"] {
        for (code, body) in fences(&repo_file(file), "ggd-error") {
            seen += 1;
            assert!(
                !code.is_empty(),
                "{file}: ```ggd-error fence needs its code in the info string"
            );
            let report = check_source(&body, Some(&catalog), &CheckOptions::default());
            let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code.code()).collect();
            assert_eq!(
                codes,
                vec![code.as_str()],
                "{file}: ```ggd-error {code} block must produce exactly {code}\n{body}"
            );
        }
    }
    assert!(seen >= 4, "expected the documented ggd-error examples");
}

/// `examples/queries/<stem>.ggd` files and the schema each checks against.
const EXAMPLE_QUERIES: &[(&str, &str)] = &[
    ("dblp_coauthors", "dblp"),
    ("dblp_temporal", "dblp_temporal"),
    ("imdb_coactors", "imdb"),
    ("tpch_copurchase", "tpch"),
    ("univ_coenrollment", "univ"),
    ("univ_bipartite", "univ"),
];

#[test]
fn example_queries_check_warning_free() {
    for (query, schema) in EXAMPLE_QUERIES {
        let source = repo_file(&format!("examples/queries/{query}.ggd"));
        let catalog = CheckCatalog::parse(&repo_file(&format!("examples/queries/{schema}.ggs")))
            .unwrap_or_else(|e| panic!("{schema}.ggs: {e}"));
        let report = check_source(&source, Some(&catalog), &CheckOptions::default());
        assert!(
            report.diagnostics.is_empty(),
            "{query}.ggd must be clean under default options (the CI \
             --deny-warnings gate), got {:?}",
            report.diagnostics
        );
        assert!(report.spec.is_some());
    }
}

#[test]
fn no_stray_example_query_files() {
    // Every .ggd under examples/queries/ must be in the checked table
    // above (and therefore covered by CI), and every referenced schema
    // must exist.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/queries");
    let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
        .expect("examples/queries exists")
        .filter_map(|e| {
            let name = e.unwrap().file_name().into_string().unwrap();
            name.strip_suffix(".ggd").map(str::to_string)
        })
        .collect();
    on_disk.sort();
    let mut listed: Vec<String> = EXAMPLE_QUERIES.iter().map(|(q, _)| q.to_string()).collect();
    listed.sort();
    assert_eq!(
        on_disk, listed,
        "EXAMPLE_QUERIES and examples/queries/ diverged"
    );
}

/// Whitespace-insensitive comparison: the `.ggd` files format queries for
/// reading, the Rust constants for embedding.
fn normalized(s: &str) -> String {
    let no_comments: Vec<&str> = s
        .lines()
        .map(|l| {
            let cut = l.find(['%', '#']).unwrap_or(l.len());
            &l[..cut]
        })
        .collect();
    no_comments
        .join("\n")
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
}

#[test]
fn example_queries_match_the_queries_the_examples_run() {
    use graphgen::datagen::relational::{
        DBLP_COAUTHORS, IMDB_COACTORS, TPCH_COPURCHASE, UNIV_BIPARTITE, UNIV_COENROLLMENT,
    };
    for (file, constant) in [
        ("dblp_coauthors", DBLP_COAUTHORS),
        ("imdb_coactors", IMDB_COACTORS),
        ("tpch_copurchase", TPCH_COPURCHASE),
        ("univ_coenrollment", UNIV_COENROLLMENT),
        ("univ_bipartite", UNIV_BIPARTITE),
    ] {
        let on_disk = normalized(&repo_file(&format!("examples/queries/{file}.ggd")));
        assert_eq!(
            on_disk,
            normalized(constant),
            "examples/queries/{file}.ggd diverged from the datagen constant"
        );
    }
    // The temporal query file is the first era examples/temporal_coauthors.rs
    // generates (same rule template, years 2000..2005).
    let mut expected = String::from("Nodes(ID, Name) :- Author(ID, Name).\n");
    for year in 2000..2005 {
        expected.push_str(&format!(
            "Edges(A, B) :- AuthorPub(A, P, {year}), AuthorPub(B, P, {year}).\n"
        ));
    }
    assert_eq!(
        normalized(&repo_file("examples/queries/dblp_temporal.ggd")),
        normalized(&expected),
        "examples/queries/dblp_temporal.ggd diverged from the temporal example's template"
    );
}

#[test]
fn doc_diagnostics_table_lists_every_code() {
    // The docs/DSL.md reference table must name every stable code.
    let docs = repo_file("docs/DSL.md");
    for code in graphgen::dsl::Code::all() {
        assert!(
            docs.contains(&format!("`{}`", code.code())),
            "docs/DSL.md diagnostics reference is missing {} ({})",
            code.code(),
            code.name()
        );
        assert!(
            docs.contains(code.name()),
            "docs/DSL.md diagnostics reference is missing the name {}",
            code.name()
        );
    }
    // And the severity split documented matches the code prefixes.
    assert!(matches!(
        graphgen::dsl::Code::UnknownRelation.severity(),
        Severity::Error
    ));
}
