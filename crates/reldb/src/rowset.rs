//! Compact, arena-backed row storage for operator pipelines.
//!
//! A [`RowSet`] is the unit every physical operator in [`crate::exec`]
//! consumes and produces. It stores fixed-arity rows in one flat `Vec<Value>`
//! arena and addresses them by index (`row r` is
//! `&values[r * arity .. (r + 1) * arity]`), replacing the former
//! `Vec<Vec<Value>>` outputs: one allocation per *batch* instead of one per
//! *row*, no per-row `Vec` headers, and per-thread partial results merge with
//! a single `Vec::append`. `Value` copies are cheap (ints are `Copy`,
//! strings bump an `Arc` refcount), so the arena never deep-copies string
//! payloads.

use crate::value::Value;
use graphgen_common::{ByteSize, FxHasher};
use std::hash::{Hash, Hasher};

/// A batch of fixed-arity rows in one flat value arena.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RowSet {
    arity: usize,
    rows: usize,
    values: Vec<Value>,
}

impl RowSet {
    /// An empty row set of the given arity.
    pub fn new(arity: usize) -> Self {
        Self {
            arity,
            rows: 0,
            values: Vec::new(),
        }
    }

    /// An empty row set with arena capacity reserved for `rows` rows.
    pub fn with_row_capacity(arity: usize, rows: usize) -> Self {
        Self {
            arity,
            rows: 0,
            values: Vec::with_capacity(arity * rows),
        }
    }

    /// Build from materialized rows (tests, CSV ingestion). Panics if any
    /// row's length differs from `arity`.
    pub fn from_rows<I>(arity: usize, rows: I) -> Self
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        let mut out = Self::new(arity);
        for row in rows {
            assert_eq!(row.len(), arity, "row arity mismatch");
            out.rows += 1;
            out.values.extend(row);
        }
        out
    }

    /// Number of values per row.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Row `r` as a value slice.
    pub fn row(&self, r: usize) -> &[Value] {
        &self.values[r * self.arity..r * self.arity + self.arity]
    }

    /// Iterate rows as value slices, in row order.
    pub fn iter(&self) -> impl Iterator<Item = &[Value]> + '_ {
        (0..self.rows).map(move |r| self.row(r))
    }

    /// Append one row given as an iterator of owned values.
    ///
    /// # Panics
    /// If the iterator does not yield exactly `arity` values — a misaligned
    /// arena would silently corrupt every later row, so this is a hard
    /// check (one integer compare per row).
    pub fn push_row<I: IntoIterator<Item = Value>>(&mut self, row: I) {
        let before = self.values.len();
        self.values.extend(row);
        assert_eq!(self.values.len() - before, self.arity, "row arity");
        self.rows += 1;
    }

    /// Append one row by cloning a value slice (cheap: ints copy, strings
    /// bump an `Arc`).
    ///
    /// # Panics
    /// If `row.len() != arity` (see [`RowSet::push_row`]).
    pub fn push_row_from(&mut self, row: &[Value]) {
        assert_eq!(row.len(), self.arity, "row arity");
        self.values.extend_from_slice(row);
        self.rows += 1;
    }

    /// Append every row of `other` (used to merge per-thread partial
    /// outputs in morsel order). Panics on arity mismatch.
    pub fn append(&mut self, mut other: RowSet) {
        assert_eq!(self.arity, other.arity, "row set arity mismatch");
        self.values.append(&mut other.values);
        self.rows += other.rows;
    }

    /// Materialize every row as an owned `Vec<Value>` (tests / debugging).
    pub fn to_vecs(&self) -> Vec<Vec<Value>> {
        self.iter().map(<[Value]>::to_vec).collect()
    }

    /// Consume an arity-2 row set into `(x, y)` pairs without cloning.
    ///
    /// # Panics
    /// If the arity is not 2.
    pub fn into_pairs(self) -> Vec<(Value, Value)> {
        assert_eq!(self.arity, 2, "into_pairs requires arity 2");
        let mut out = Vec::with_capacity(self.rows);
        let mut it = self.values.into_iter();
        while let (Some(x), Some(y)) = (it.next(), it.next()) {
            out.push((x, y));
        }
        out
    }
}

/// 64-bit FxHash of a row given cell by cell — the single definition of
/// row identity, shared by DISTINCT, the join partitioner, and the
/// catalog's delete scan (which hashes table cells without materializing
/// rows).
pub fn hash_cells<'a>(cells: impl Iterator<Item = &'a Value>) -> u64 {
    let mut h = FxHasher::default();
    for v in cells {
        v.hash(&mut h);
    }
    h.finish()
}

/// 64-bit FxHash of a materialized row (all values in order).
pub fn hash_row(row: &[Value]) -> u64 {
    hash_cells(row.iter())
}

/// 64-bit FxHash of a single value (join keys).
pub fn hash_value(v: &Value) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

impl ByteSize for RowSet {
    fn heap_bytes(&self) -> usize {
        self.values.capacity() * std::mem::size_of::<Value>()
            + self.values.iter().map(ByteSize::heap_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(rows: &[(i64, i64)]) -> RowSet {
        RowSet::from_rows(
            2,
            rows.iter()
                .map(|&(a, b)| vec![Value::int(a), Value::int(b)]),
        )
    }

    #[test]
    fn push_and_read_back() {
        let mut rs = RowSet::new(2);
        rs.push_row([Value::int(1), Value::str("a")]);
        rs.push_row_from(&[Value::int(2), Value::str("b")]);
        assert_eq!(rs.num_rows(), 2);
        assert_eq!(rs.arity(), 2);
        assert_eq!(rs.row(1), &[Value::int(2), Value::str("b")]);
        assert_eq!(rs.iter().count(), 2);
        assert!(!rs.is_empty());
    }

    #[test]
    fn append_merges_in_order() {
        let mut a = pairs(&[(1, 1), (2, 2)]);
        let b = pairs(&[(3, 3)]);
        a.append(b);
        assert_eq!(a.to_vecs(), pairs(&[(1, 1), (2, 2), (3, 3)]).to_vecs());
    }

    #[test]
    fn into_pairs_round_trip() {
        let rs = pairs(&[(1, 10), (2, 20)]);
        assert_eq!(
            rs.into_pairs(),
            vec![
                (Value::int(1), Value::int(10)),
                (Value::int(2), Value::int(20))
            ]
        );
    }

    #[test]
    fn zero_arity_rows_are_representable() {
        let mut rs = RowSet::new(0);
        rs.push_row([]);
        rs.push_row([]);
        assert_eq!(rs.num_rows(), 2);
        assert_eq!(rs.row(1), &[] as &[Value]);
    }

    #[test]
    fn row_hash_distinguishes_rows() {
        let rs = pairs(&[(1, 2), (2, 1), (1, 2)]);
        assert_eq!(hash_row(rs.row(0)), hash_row(rs.row(2)));
        assert_ne!(hash_row(rs.row(0)), hash_row(rs.row(1)));
        assert_ne!(hash_value(&Value::int(1)), hash_value(&Value::int(2)));
    }

    #[test]
    fn bytesize_counts_arena() {
        let rs = pairs(&[(1, 2)]);
        assert!(rs.heap_bytes() >= 2 * std::mem::size_of::<Value>());
    }
}
