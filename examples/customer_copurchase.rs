//! Multi-layer extraction: the TPCH co-purchase graph ([Q2]).
//!
//! Connecting customers who bought the same part needs a 4-atom chain
//! (`Orders ⋈ LineItem ⋈ LineItem ⋈ Orders`). The planner hands the
//! key–foreign-key joins to the relational engine and postpones the
//! large-output ones, producing the multi-layered condensed representation
//! of the paper's Fig. 5a. This example shows the plan, the layer
//! structure, and why expanding would be catastrophic.
//!
//! Run with: `cargo run --release --example customer_copurchase`

use graphgen::core::{AnyGraph, GraphGen, GraphGenConfig};
use graphgen::datagen::{relational::TPCH_COPURCHASE, tpch_like, TpchConfig};
use graphgen::dedup;
use graphgen::graph::GraphRep;

fn main() {
    let db = tpch_like(TpchConfig {
        customers: 2_000,
        orders: 6_000,
        parts: 150,
        avg_lineitems: 3.0,
        seed: 3,
    });
    let gg = GraphGen::with_config(
        &db,
        GraphGenConfig {
            auto_expand_threshold: None,
            ..Default::default()
        },
    );
    let extracted = gg.extract(TPCH_COPURCHASE).expect("extraction");

    println!("plan:");
    for (i, join) in extracted.report.plans[0].joins.iter().enumerate() {
        println!(
            "  join {}: {} ⋈ {} — |L|={}, |R|={}, d={}, est. output {:.0} -> {}",
            i,
            join.left_table,
            join.right_table,
            join.left_rows,
            join.right_rows,
            join.distinct,
            join.estimated_output,
            if join.large_output { "POSTPONED (virtual nodes)" } else { "database" }
        );
    }
    for sql in &extracted.report.sql {
        println!("  SQL: {sql}");
    }

    match &extracted.graph {
        AnyGraph::CDup(g) => {
            println!(
                "\ncondensed: {} real + {} virtual nodes, {} stored edges, {} layers",
                g.num_vertices(),
                g.num_virtual(),
                g.stored_edge_count(),
                g.layer_count()
            );
            let expanded = g.expanded_edge_count();
            println!(
                "expanded would be {} edges — {:.1}x the condensed size",
                expanded,
                expanded as f64 / g.stored_edge_count() as f64
            );
            if !g.is_single_layer() {
                let flat = dedup::flatten_to_single_layer(g);
                println!(
                    "flattened to single layer: {} virtual nodes, {} stored edges",
                    flat.num_virtual(),
                    flat.stored_edge_count()
                );
            }
            // BITMAP-2 works directly on the multi-layer structure.
            let (bmp, stats) = dedup::bitmap2(g.clone(), 4);
            println!(
                "BITMAP-2: {} bitmaps installed, {} useless edges pruned, {} stored edges",
                bmp.bitmap_count(),
                stats.pruned_edges,
                bmp.stored_edge_count()
            );
            // Top co-purchasers.
            let degs = graphgen::algo::degrees(&bmp, 4);
            let max = degs.iter().max().copied().unwrap_or(0);
            println!("max distinct co-purchasers for one customer: {max}");
        }
        AnyGraph::Exp(_) => println!("graph was auto-expanded (tiny input)"),
        _ => unreachable!(),
    }
}
