//! Co-author analysis on a DBLP-shaped database (the paper's motivating
//! workload): extract the co-author graph condensed, compare representation
//! sizes, deduplicate, and find communities via connected components plus
//! the most collaborative authors.
//!
//! Run with: `cargo run --release --example coauthors`

use graphgen::algo;
use graphgen::common::VertexOrdering;
use graphgen::core::{AnyGraph, GraphGen, GraphGenConfig};
use graphgen::datagen::{dblp_like, relational::DBLP_COAUTHORS, DblpConfig};
use graphgen::dedup::Dedup1Algorithm;
use graphgen::graph::{ExpandedGraph, GraphRep};

fn main() {
    let db = dblp_like(DblpConfig {
        authors: 3_000,
        publications: 6_000,
        avg_authors_per_pub: 2.2,
        seed: 7,
    });
    println!("database: {} rows across {} tables", db.total_rows(), db.table_names().count());

    // Keep the condensed representation (no auto-expansion) so we can
    // compare the paper's trade-offs.
    let gg = GraphGen::with_config(
        &db,
        GraphGenConfig {
            auto_expand_threshold: None,
            large_output_factor: 0.0,
            preprocess: false,
            threads: 2,
        },
    );
    let extracted = gg.extract(DBLP_COAUTHORS).expect("extraction");
    let AnyGraph::CDup(cdup) = &extracted.graph else {
        unreachable!("auto-expansion disabled")
    };
    let decision = &extracted.report.plans[0].joins[0];
    println!(
        "self-join estimated output {:.0} rows over {} distinct pubs -> large-output: {}",
        decision.estimated_output, decision.distinct, decision.large_output
    );

    // Representation comparison (Fig. 10 in miniature).
    let exp = ExpandedGraph::from_rep(cdup);
    let dedup1 = Dedup1Algorithm::GreedyVnf.run(cdup, VertexOrdering::Random, 1);
    println!("\n{:>10} {:>12} {:>12}", "rep", "stored edges", "heap bytes");
    println!("{:>10} {:>12} {:>12}", "C-DUP", cdup.stored_edge_count(), cdup.heap_bytes());
    println!("{:>10} {:>12} {:>12}", "EXP", exp.stored_edge_count(), exp.heap_bytes());
    println!("{:>10} {:>12} {:>12}", "DEDUP-1", dedup1.stored_edge_count(), dedup1.heap_bytes());

    // Communities via connected components (duplicate-insensitive: runs on
    // the raw condensed graph).
    let labels = algo::connected_components(cdup, 4);
    let mut sizes: std::collections::HashMap<u32, usize> = Default::default();
    for u in cdup.vertices() {
        *sizes.entry(labels[u.0 as usize]).or_insert(0) += 1;
    }
    let mut sizes: Vec<(usize, u32)> = sizes.into_iter().map(|(l, s)| (s, l)).collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!("\n{} connected components; largest: {:?}", sizes.len(), &sizes[..sizes.len().min(5)]);

    // Most collaborative authors by degree.
    let degs = algo::degrees(&dedup1, 4);
    let mut by_degree: Vec<(u32, u32)> = dedup1.vertices().map(|u| (degs[u.0 as usize], u.0)).collect();
    by_degree.sort_unstable_by(|a, b| b.cmp(a));
    println!("\ntop collaborators:");
    for &(d, u) in by_degree.iter().take(5) {
        let name = extracted
            .properties
            .get(graphgen::graph::RealId(u), "Name")
            .and_then(|p| p.as_text().map(str::to_string))
            .unwrap_or_default();
        println!("  {name}: {d} distinct co-authors");
    }
}
