//! Recursive-descent parser for the extraction DSL.
//!
//! Every error carries a full [`Diagnostic`] — code, span, message, help —
//! so front ends can render a caret pointing at the offending token
//! instead of a bare message.

use crate::ast::{Atom, HeadKind, Program, Rule, Term};
use crate::diag::{Code, Diagnostic};
use crate::lexer::{tokenize, Token};
use crate::span::{eof_span, Span};
use std::fmt;

/// Parse or semantic-analysis errors. Each variant wraps the diagnostic
/// that describes it; [`ParseError::diagnostic`] gives uniform access.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenizer failure (`E000`).
    Lex(Diagnostic),
    /// Grammar failure (`E000`).
    Syntax(Diagnostic),
    /// Post-parse validation failure (from [`mod@crate::check`]).
    Semantic(Diagnostic),
}

impl ParseError {
    /// The underlying diagnostic.
    pub fn diagnostic(&self) -> &Diagnostic {
        match self {
            ParseError::Lex(d) | ParseError::Syntax(d) | ParseError::Semantic(d) => d,
        }
    }

    /// Consume into the underlying diagnostic.
    pub fn into_diagnostic(self) -> Diagnostic {
        match self {
            ParseError::Lex(d) | ParseError::Syntax(d) | ParseError::Semantic(d) => d,
        }
    }

    /// The source span the error points at.
    pub fn span(&self) -> Span {
        self.diagnostic().span
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kind, d) = match self {
            ParseError::Lex(d) => ("lex error", d),
            ParseError::Syntax(d) => ("syntax error", d),
            ParseError::Semantic(d) => ("semantic error", d),
        };
        if d.span.is_synthetic() {
            write!(f, "{kind}: {}", d.message)
        } else {
            write!(f, "{kind} at {}: {}", d.span, d.message)
        }
    }
}

impl std::error::Error for ParseError {}

fn syntax(span: Span, message: impl Into<String>) -> ParseError {
    ParseError::Syntax(Diagnostic::new(Code::Syntax, span, message))
}

struct Parser {
    tokens: Vec<(Token, Span)>,
    pos: usize,
    eof: Span,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<(Token, Span)> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    /// The span where the next token would be — end of input if none.
    fn here(&self) -> Span {
        self.tokens
            .get(self.pos)
            .map(|(_, s)| *s)
            .unwrap_or(self.eof)
    }

    fn expect(&mut self, want: &Token) -> Result<Span, ParseError> {
        match self.next() {
            Some((t, s)) if &t == want => Ok(s),
            Some((t, s)) => Err(syntax(s, format!("expected `{want}`, found `{t}`"))),
            None => Err(syntax(
                self.eof,
                format!("expected `{want}`, found end of input"),
            )),
        }
    }

    fn term(&mut self) -> Result<(Term, Span), ParseError> {
        match self.next() {
            Some((Token::Ident(name), s)) => Ok((Term::Var(name), s)),
            Some((Token::Int(v), s)) => Ok((Term::Int(v), s)),
            Some((Token::Str(str), s)) => Ok((Term::Str(str), s)),
            Some((Token::Wildcard, s)) => Ok((Term::Wildcard, s)),
            Some((t, s)) => Err(syntax(s, format!("expected term, found `{t}`"))),
            None => Err(syntax(self.eof, "expected term, found end of input")),
        }
    }

    fn term_list(&mut self) -> Result<(Vec<Term>, Vec<Span>), ParseError> {
        self.expect(&Token::LParen)?;
        let mut terms = Vec::new();
        let mut spans = Vec::new();
        let (t, s) = self.term()?;
        terms.push(t);
        spans.push(s);
        loop {
            match self.peek() {
                Some(Token::Comma) => {
                    self.next();
                    let (t, s) = self.term()?;
                    terms.push(t);
                    spans.push(s);
                }
                Some(Token::RParen) => {
                    self.next();
                    return Ok((terms, spans));
                }
                Some(t) => {
                    let msg = format!("expected `,` or `)` in term list, found `{t}`");
                    return Err(syntax(self.here(), msg));
                }
                None => {
                    return Err(syntax(
                        self.eof,
                        "expected `,` or `)` in term list, found end of input",
                    ))
                }
            }
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let (relation, relation_span) = match self.next() {
            Some((Token::Ident(name), s)) => (name, s),
            Some((t, s)) => return Err(syntax(s, format!("expected relation name, found `{t}`"))),
            None => {
                return Err(syntax(
                    self.eof,
                    "expected relation name, found end of input",
                ))
            }
        };
        let (args, arg_spans) = self.term_list()?;
        Ok(Atom {
            relation,
            args,
            relation_span,
            arg_spans,
        })
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        let (head_name, head_span) = match self.next() {
            Some((Token::Ident(name), s)) => (name, s),
            Some((t, s)) => {
                return Err(syntax(
                    s,
                    format!("expected `Nodes` or `Edges`, found `{t}`"),
                ))
            }
            None => unreachable!("rule() called at end of input"),
        };
        let head = match head_name.as_str() {
            "Nodes" => HeadKind::Nodes,
            "Edges" => HeadKind::Edges,
            other => {
                return Err(ParseError::Syntax(
                    Diagnostic::new(
                        Code::Syntax,
                        head_span,
                        format!("rule heads must be `Nodes` or `Edges` (found `{other}`)"),
                    )
                    .with_help("recursion and auxiliary views are not supported"),
                ))
            }
        };
        let (head_args, head_arg_spans) = self.term_list()?;
        self.expect(&Token::Turnstile)?;
        let mut body = vec![self.atom()?];
        loop {
            match self.peek() {
                Some(Token::Comma) => {
                    self.next();
                    body.push(self.atom()?);
                }
                Some(Token::Dot) => {
                    self.next();
                    break;
                }
                Some(t) => {
                    let msg = format!("expected `,` or `.` after atom, found `{t}`");
                    return Err(syntax(self.here(), msg));
                }
                None => {
                    return Err(syntax(
                        self.eof,
                        "expected `,` or `.` after atom, found end of input",
                    ))
                }
            }
        }
        Ok(Rule {
            head,
            head_args,
            body,
            head_span,
            head_arg_spans,
        })
    }
}

/// Parse a whole program.
pub fn parse(text: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(text).map_err(ParseError::Lex)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        eof: eof_span(text),
    };
    let mut rules = Vec::new();
    while parser.peek().is_some() {
        rules.push(parser.rule()?);
    }
    if rules.is_empty() {
        return Err(syntax(parser.eof, "empty program"));
    }
    Ok(Program { rules })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_q1() {
        let p = parse(
            "Nodes(ID, Name) :- Author(ID, Name).\n\
             Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[0].head, HeadKind::Nodes);
        assert_eq!(p.rules[1].head, HeadKind::Edges);
        assert_eq!(p.rules[1].body.len(), 2);
        assert_eq!(p.rules[1].body[0].relation, "AuthorPub");
    }

    #[test]
    fn parses_q3_heterogeneous() {
        let p = parse(
            "Nodes(ID, Name) :- Instructor(ID, Name).\n\
             Nodes(ID, Name) :- Student(ID, Name).\n\
             Edges(ID1, ID2) :- TaughtCourse(ID1, CourseId), TookCourse(ID2, CourseId).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 3);
    }

    #[test]
    fn parses_constants_and_wildcards() {
        let p = parse("Edges(A, B) :- CastInfo(_, A, M, 'actor'), CastInfo(_, B, M, 'actor').")
            .unwrap();
        let atom = &p.rules[0].body[0];
        assert_eq!(atom.args[0], Term::Wildcard);
        assert_eq!(atom.args[3], Term::Str("actor".into()));
    }

    #[test]
    fn ast_spans_point_at_source() {
        let src = "Nodes(ID, Name) :- Author(ID, Name).";
        let p = parse(src).unwrap();
        let r = &p.rules[0];
        assert_eq!((r.head_span.offset, r.head_span.len), (0, 5));
        assert_eq!(&src[r.head_arg_spans[1].offset..][..4], "Name");
        let a = &r.body[0];
        assert_eq!(&src[a.relation_span.offset..][..6], "Author");
        assert_eq!((a.arg_spans[0].line, a.arg_spans[0].col), (1, 27));
    }

    #[test]
    fn rejects_unknown_head() {
        let e = parse("Paths(X, Y) :- Edge(X, Y).").unwrap_err();
        assert!(matches!(e, ParseError::Syntax(_)));
        assert_eq!((e.span().line, e.span().col, e.span().len), (1, 1, 5));
    }

    #[test]
    fn rejects_missing_dot_with_eof_span() {
        let e = parse("Nodes(X) :- R(X)").unwrap_err();
        assert_eq!((e.span().line, e.span().col), (1, 17));
        assert!(e.to_string().contains("1:17"), "{e}");
    }

    #[test]
    fn error_points_at_offending_token() {
        // The stray `)` on line 2.
        let e = parse("Nodes(X) :- R(X).\nEdges(A, B) :- S(A, B)).").unwrap_err();
        assert_eq!((e.span().line, e.span().col), (2, 23));
    }

    #[test]
    fn rejects_empty_program() {
        assert!(parse("   % only a comment\n").is_err());
    }
}
