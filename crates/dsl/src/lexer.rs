//! Tokenizer for the extraction DSL.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier (relation name or variable).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Single- or double-quoted string literal.
    Str(String),
    /// `_`
    Wildcard,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `:-`
    Turnstile,
    /// `.`
    Dot,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Wildcard => write!(f, "_"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Turnstile => write!(f, ":-"),
            Token::Dot => write!(f, "."),
        }
    }
}

/// Tokenize; returns `(token, byte_offset)` pairs or an error message.
pub fn tokenize(text: &str) -> Result<Vec<(Token, usize)>, String> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '%' | '#' => {
                // comment to end of line
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push((Token::LParen, i));
                i += 1;
            }
            ')' => {
                tokens.push((Token::RParen, i));
                i += 1;
            }
            ',' => {
                tokens.push((Token::Comma, i));
                i += 1;
            }
            '.' => {
                tokens.push((Token::Dot, i));
                i += 1;
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    tokens.push((Token::Turnstile, i));
                    i += 2;
                } else {
                    return Err(format!("expected `:-` at byte {i}"));
                }
            }
            '\'' | '"' => {
                let quote = bytes[i];
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(format!("unterminated string at byte {i}"));
                }
                tokens.push((Token::Str(text[start..j].to_string()), i));
                i = j + 1;
            }
            '_' if !bytes
                .get(i + 1)
                .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_') =>
            {
                tokens.push((Token::Wildcard, i));
                i += 1;
            }
            c if c.is_ascii_digit() || c == '-' => {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let lit = &text[start..i];
                let v: i64 = lit
                    .parse()
                    .map_err(|e| format!("bad integer `{lit}`: {e}"))?;
                tokens.push((Token::Int(v), start));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push((Token::Ident(text[start..i].to_string()), start));
            }
            other => return Err(format!("unexpected character `{other}` at byte {i}")),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_q1() {
        let toks = tokenize("Edges(ID1, ID2) :- AP(ID1, P), AP(ID2, P).").unwrap();
        let kinds: Vec<&Token> = toks.iter().map(|(t, _)| t).collect();
        assert_eq!(kinds[0], &Token::Ident("Edges".into()));
        assert_eq!(kinds[1], &Token::LParen);
        assert!(kinds.contains(&&Token::Turnstile));
        assert_eq!(kinds.last().unwrap(), &&Token::Dot);
    }

    #[test]
    fn strings_ints_wildcards() {
        let toks = tokenize("R(_, 'abc', \"d,e\", -42, 7)").unwrap();
        let kinds: Vec<Token> = toks.into_iter().map(|(t, _)| t).collect();
        assert!(kinds.contains(&Token::Wildcard));
        assert!(kinds.contains(&Token::Str("abc".into())));
        assert!(kinds.contains(&Token::Str("d,e".into())));
        assert!(kinds.contains(&Token::Int(-42)));
        assert!(kinds.contains(&Token::Int(7)));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("% a comment\nR(X). # trailing\n").unwrap();
        assert_eq!(toks.len(), 5);
    }

    #[test]
    fn underscore_prefixed_ident_is_ident() {
        let toks = tokenize("_foo").unwrap();
        assert_eq!(toks[0].0, Token::Ident("_foo".into()));
    }

    #[test]
    fn errors() {
        assert!(tokenize("R(x) : y").is_err());
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("R(@)").is_err());
    }
}
