//! Incremental maintenance vs. from-scratch re-extraction on the Appendix
//! C.2 single-layer workload (`datagen::large`).
//!
//! Two sweeps demonstrate the delta-maintenance contract:
//!
//! 1. **Delta sweep** (fixed database): patch cost must grow with the
//!    delta size, and stay far below a full re-extraction for small
//!    deltas.
//! 2. **Scale sweep** (fixed delta): patch cost must stay roughly flat as
//!    the database grows, while re-extraction cost grows with it —
//!    patch cost scales with the *delta*, not the *database*.
//!
//! Every patched graph is verified byte-identical (canonical key-space
//! serialization) to a from-scratch extraction on the mutated database
//! unless `--quick` skips the check.
//!
//! Usage: `incremental_extraction [--scale=F] [--quick]`
//!   --scale=F   fraction of the paper's row counts (default 0.005)
//!   --quick     scale 0.001 and skip the byte-identity verification
//!
//! Every run also writes `BENCH_incremental.json` to the working
//! directory — one record per measured op (`op`, `threads`, `p50_ns`,
//! `p99_ns`, `throughput`) — which CI uploads as an artifact; see
//! [`graphgen_bench::report`]. Each sweep point is a single timed run, so
//! `p50_ns == p99_ns` there; throughput is rows changed per second of
//! patch (or re-extract) time.

use graphgen_bench::report::BenchReport;
use graphgen_bench::{has_flag, ms, row, speedup, time};
use graphgen_core::{GraphGen, GraphGenConfig, GraphHandle};
use graphgen_datagen::large::{single_layer_database, SingleLayerConfig};
use graphgen_datagen::mutations::{random_mutation, MutationConfig};
use graphgen_reldb::Database;
use std::time::Duration;

fn arg_scale() -> f64 {
    let mut scale = 0.005;
    for a in std::env::args() {
        if a == "--quick" {
            scale = 0.001;
        } else if let Some(v) = a.strip_prefix("--scale=") {
            scale = v.parse().expect("--scale=F expects a float");
        }
    }
    scale
}

fn cfg(incremental: bool) -> GraphGenConfig {
    GraphGenConfig::builder()
        .large_output_factor(0.0) // pin the condensed path / segmentation
        .preprocess(false)
        .auto_expand_threshold(None)
        .incremental(incremental)
        .build()
}

fn build(scale: f64) -> (Database, String, GraphHandle) {
    let (db, query) = single_layer_database(SingleLayerConfig::single_1(scale));
    let handle = GraphGen::with_config(&db, cfg(true))
        .extract(&query)
        .expect("incremental extraction");
    (db, query, handle)
}

/// Mutate, patch, and re-extract once; returns (patch time, re-extract
/// time, rows changed).
fn round(
    db: &mut Database,
    query: &str,
    handle: &mut GraphHandle,
    delta_rows: usize,
    seed: u64,
    verify: bool,
) -> (Duration, Duration, usize) {
    let deltas = random_mutation(
        db,
        "A",
        MutationConfig {
            inserts: delta_rows / 2,
            deletes: delta_rows / 2,
            seed,
        },
    )
    .expect("mutation");
    let changed: usize = deltas.iter().map(graphgen_reldb::Delta::len).sum();
    let (_, patch_time) = time(|| {
        for d in &deltas {
            handle.apply_delta(d).expect("apply_delta");
        }
    });
    let (fresh, extract_time) = time(|| {
        GraphGen::with_config(db, cfg(false))
            .extract(query)
            .expect("re-extraction")
    });
    if verify {
        assert_eq!(
            handle.canonical_bytes(),
            fresh.canonical_bytes(),
            "patched graph diverged from re-extraction"
        );
    }
    (patch_time, extract_time, changed)
}

fn main() {
    let scale = arg_scale();
    let verify = !has_flag("--quick");
    let (mut db, query, mut handle) = build(scale);
    let base_rows = db.table("A").expect("table A").num_rows();
    println!(
        "Incremental extraction vs full re-extract (Single_1 at scale {scale}, {base_rows} rows)\n"
    );

    let mut report = BenchReport::new("incremental");
    let push = |report: &mut BenchReport, op: String, d: Duration, changed: usize| {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        let throughput = changed as f64 / d.as_secs_f64().max(1e-9);
        report.push(op, 1, ns, ns, throughput);
    };

    println!("Delta sweep (fixed database, growing delta):");
    let widths = [12, 12, 14, 16, 10];
    row(
        &[
            "delta_rows",
            "patch(ms)",
            "reextract(ms)",
            "patch_speedup",
            "verified",
        ]
        .map(String::from),
        &widths,
    );
    for (i, delta_rows) in [16usize, 256, 4096].into_iter().enumerate() {
        let (patch, extract, changed) = round(
            &mut db,
            &query,
            &mut handle,
            delta_rows,
            100 + i as u64,
            verify,
        );
        row(
            &[
                changed.to_string(),
                ms(patch),
                ms(extract),
                speedup(extract, patch),
                if verify { "identical" } else { "skipped" }.to_string(),
            ],
            &widths,
        );
        push(
            &mut report,
            format!("patch_delta_{delta_rows}"),
            patch,
            changed,
        );
        push(
            &mut report,
            format!("reextract_delta_{delta_rows}"),
            extract,
            changed,
        );
    }

    println!("\nScale sweep (database grows, delta fixed at 256 rows):");
    let widths = [12, 12, 12, 14, 16, 10];
    row(
        &[
            "db_rows",
            "delta_rows",
            "patch(ms)",
            "reextract(ms)",
            "patch_speedup",
            "verified",
        ]
        .map(String::from),
        &widths,
    );
    for (i, factor) in [1.0f64, 2.0, 4.0].into_iter().enumerate() {
        let (mut db, query, mut handle) = build(scale * factor);
        let rows = db.table("A").expect("table A").num_rows();
        let (patch, extract, changed) =
            round(&mut db, &query, &mut handle, 256, 200 + i as u64, verify);
        row(
            &[
                rows.to_string(),
                changed.to_string(),
                ms(patch),
                ms(extract),
                speedup(extract, patch),
                if verify { "identical" } else { "skipped" }.to_string(),
            ],
            &widths,
        );
        push(&mut report, format!("patch_scale_{rows}"), patch, changed);
        push(
            &mut report,
            format!("reextract_scale_{rows}"),
            extract,
            changed,
        );
    }
    println!("\npatch_speedup = re-extraction time over patch time; patch cost should track");
    println!("the delta column, not the db_rows column.");
    report.write("BENCH_incremental.json");
}
