//! Typed mutation logs for incremental graph maintenance.
//!
//! The paper's GraphGen re-runs its segment queries from scratch whenever
//! the base tables change. The mutation API on [`crate::Database`]
//! ([`Database::insert_rows`], [`Database::delete_rows`]) instead records
//! every change as a [`Delta`] — an ordered log of signed rows against one
//! table — which `graphgen-core`'s incremental module propagates through
//! the extraction plan with work proportional to the delta (FO+MOD-style
//! delta processing, Berkholz et al.).
//!
//! A [`Delta`] only ever describes mutations that **actually happened**:
//! `delete_rows` silently drops requested rows that were not present, so a
//! delete of a never-inserted row yields an empty delta and downstream
//! `apply_delta` is a no-op.
//!
//! [`Database::insert_rows`]: crate::Database::insert_rows
//! [`Database::delete_rows`]: crate::Database::delete_rows

use crate::error::{DbError, DbResult};
use crate::value::Value;

/// Whether a [`DeltaRow`] entered or left the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeltaOp {
    /// The row was appended to the table.
    Insert,
    /// One occurrence of the row was removed from the table.
    Delete,
}

impl DeltaOp {
    /// The row-multiplicity sign of this operation: `+1` for inserts,
    /// `-1` for deletes (the form the delta-join rules consume).
    pub fn sign(self) -> i64 {
        match self {
            DeltaOp::Insert => 1,
            DeltaOp::Delete => -1,
        }
    }
}

/// One logged mutation: a full row plus the operation applied to it.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRow {
    /// The row values, in schema column order.
    pub values: Vec<Value>,
    /// Insert or delete.
    pub op: DeltaOp,
}

/// An ordered mutation log against a single table.
///
/// Produced by [`crate::Database::insert_rows`] and
/// [`crate::Database::delete_rows`]; several same-table deltas can be
/// combined with [`Delta::then`] so that e.g. an insert and a delete of the
/// same row travel as one batch (they cancel during propagation).
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    table: String,
    rows: Vec<DeltaRow>,
}

impl Delta {
    /// A new, empty delta against `table`.
    pub fn new(table: impl Into<String>) -> Self {
        Self {
            table: table.into(),
            rows: Vec::new(),
        }
    }

    /// The table this delta mutates.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The logged rows, in the order the mutations were applied.
    pub fn rows(&self) -> &[DeltaRow] {
        &self.rows
    }

    /// Number of logged mutations.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if nothing was mutated (e.g. every requested delete was absent).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a logged mutation. The `Database` mutation API is the normal
    /// producer; hand-built deltas are also accepted by the incremental
    /// maintenance layer, but they must accurately describe mutations that
    /// were applied to the database — a delta claiming to delete a row that
    /// was never present makes `apply_delta` report an inconsistency.
    pub fn push(&mut self, values: Vec<Value>, op: DeltaOp) {
        self.rows.push(DeltaRow { values, op });
    }

    /// Concatenate another delta **against the same table** onto this one,
    /// preserving mutation order. Errors with [`DbError::Invalid`] on a
    /// table mismatch.
    pub fn then(mut self, other: Delta) -> DbResult<Delta> {
        if self.table != other.table {
            return Err(DbError::Invalid(format!(
                "cannot combine deltas for `{}` and `{}`",
                self.table, other.table
            )));
        }
        self.rows.extend(other.rows);
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: i64) -> Vec<Value> {
        vec![Value::int(v)]
    }

    #[test]
    fn signs() {
        assert_eq!(DeltaOp::Insert.sign(), 1);
        assert_eq!(DeltaOp::Delete.sign(), -1);
    }

    #[test]
    fn then_concatenates_same_table() {
        let mut a = Delta::new("T");
        a.push(row(1), DeltaOp::Insert);
        let mut b = Delta::new("T");
        b.push(row(1), DeltaOp::Delete);
        let c = a.then(b).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.rows()[0].op, DeltaOp::Insert);
        assert_eq!(c.rows()[1].op, DeltaOp::Delete);
    }

    #[test]
    fn then_rejects_table_mismatch() {
        let a = Delta::new("T");
        let b = Delta::new("U");
        assert!(matches!(a.then(b), Err(DbError::Invalid(_))));
    }

    #[test]
    fn empty_delta_reports_empty() {
        let d = Delta::new("T");
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.table(), "T");
    }
}
