//! # graphgen
//!
//! A Rust implementation of **GraphGen** — "Extracting and Analyzing Hidden
//! Graphs from Relational Databases" (Xirogiannopoulos & Deshpande, SIGMOD
//! 2017). Declaratively extract graphs hidden in relational data, hold them
//! in condensed in-memory representations that can be orders of magnitude
//! smaller than the expanded graph, and run graph algorithms directly on
//! them.
//!
//! The analyst surface is the [`core::GraphHandle`]: [`core::GraphGen`]
//! extracts one from a Datalog specification, and from there
//!
//! * the handle **is** a graph — it implements [`graph::GraphRep`], the
//!   paper's 7-operation representation-independent API, so every
//!   algorithm in [`algo`] takes it directly;
//! * [`core::GraphHandle::convert`] moves between the five representations
//!   (C-DUP / EXP / DEDUP-1 / DEDUP-2 / BITMAP) through one typed entry
//!   point, with [`core::ConvertError`] explaining any infeasible request;
//! * [`core::GraphHandle::advise`] is the paper's §6.5 chooser, and
//!   [`core::GraphHandle::convert_to_advised`] the "system decides" path;
//! * key-space accessors ([`core::GraphHandle::neighbors_by_key`],
//!   [`core::GraphHandle::vertex_property`], …) keep callers entirely in
//!   their own key domain;
//! * everything fallible reports through the unified [`Error`] type with a
//!   stable [`core::ErrorKind`] classifier.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`reldb`] — the in-memory relational engine + catalog statistics
//! * [`dsl`] — the Datalog-based extraction language
//! * [`core`] — planner, extractor, `GraphHandle`, advisor, serializer
//! * [`graph`] — C-DUP / EXP / DEDUP-1 / DEDUP-2 / BITMAP representations
//! * [`dedup`] — the §5 preprocessing & deduplication algorithms
//! * [`algo`] — graph algorithms + the vertex-centric framework
//! * [`giraph`] — the message-passing BSP port with message accounting
//! * [`vminer`] — the VMiner structural-compression baseline
//! * [`datagen`] — schema-faithful synthetic datasets
//! * [`serve`] — the serving layer: a versioned multi-graph registry with
//!   snapshot-isolated concurrent reads, write-ahead-logged persistence,
//!   crash recovery, and the `graphgen-serve` TCP front end
//!
//! See `examples/quickstart.rs` for the 5-minute tour and
//! `examples/serve.rs` for the serving layer.

pub use graphgen_algo as algo;
pub use graphgen_common as common;
pub use graphgen_core as core;
pub use graphgen_datagen as datagen;
pub use graphgen_dedup as dedup;
pub use graphgen_dsl as dsl;
pub use graphgen_giraph as giraph;
pub use graphgen_graph as graph;
pub use graphgen_reldb as reldb;
pub use graphgen_serve as serve;
pub use graphgen_vminer as vminer;

/// The unified error type of the pipeline (re-exported from
/// [`core::error`]): DSL, database, and conversion failures behind one
/// `kind()`-classified enum.
pub use graphgen_core::{ConvertError, Error, ErrorKind};

/// The first-class graph handle (re-exported from [`core::handle`]).
pub use graphgen_core::{AdvisorPolicy, ConvertOptions, GraphHandle};
