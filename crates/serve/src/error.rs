//! The serving layer's error surface.

use graphgen_common::CodecError;
use std::fmt;
use std::io;

/// Everything the serving layer can fail with.
#[derive(Debug)]
pub enum ServeError {
    /// No graph registered under this name.
    UnknownGraph(String),
    /// A graph with this name is already registered.
    DuplicateGraph(String),
    /// A graph name that cannot be used as a persistence file stem
    /// (allowed: ASCII alphanumerics, `_`, `-`; non-empty, at most 64
    /// bytes).
    BadName(String),
    /// Filesystem failure while persisting or recovering.
    Io(io::Error),
    /// A persisted file is corrupt or from an incompatible format version.
    Corrupt {
        /// The file that failed to load.
        file: String,
        /// What was wrong.
        what: String,
    },
    /// An extraction / conversion / patch failure from the pipeline.
    Graph(graphgen_core::Error),
    /// Malformed text-protocol input.
    Protocol(String),
    /// An analysis failed (kernel error, worker panic, or a status query
    /// for a result that was never computed).
    Analyze(String),
    /// A previous write failed after the database was already mutated, so
    /// the in-memory state may be ahead of the write-ahead logs. The
    /// writer refuses further work; reads keep serving the last published
    /// versions. Reopen the service from its directory to recover a
    /// consistent committed state.
    Wedged,
}

impl ServeError {
    pub(crate) fn corrupt(file: impl Into<String>, what: impl fmt::Display) -> Self {
        ServeError::Corrupt {
            file: file.into(),
            what: what.to_string(),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownGraph(name) => write!(f, "unknown graph `{name}`"),
            ServeError::DuplicateGraph(name) => write!(f, "graph `{name}` already exists"),
            ServeError::BadName(name) => write!(
                f,
                "bad graph name `{name}` (use ASCII alphanumerics, `_`, `-`; 1..=64 bytes)"
            ),
            ServeError::Io(e) => write!(f, "io: {e}"),
            ServeError::Corrupt { file, what } => write!(f, "corrupt `{file}`: {what}"),
            ServeError::Graph(e) => write!(f, "{e}"),
            ServeError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ServeError::Analyze(msg) => write!(f, "analyze: {msg}"),
            ServeError::Wedged => write!(
                f,
                "service is wedged after a write failure (in-memory state may be \
                 ahead of the write-ahead logs); reopen it from its directory to \
                 recover the consistent committed state"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<graphgen_core::Error> for ServeError {
    fn from(e: graphgen_core::Error) -> Self {
        ServeError::Graph(e)
    }
}

impl From<graphgen_reldb::DbError> for ServeError {
    fn from(e: graphgen_reldb::DbError) -> Self {
        ServeError::Graph(e.into())
    }
}

impl From<CodecError> for ServeError {
    fn from(e: CodecError) -> Self {
        ServeError::Graph(graphgen_core::Error::Snapshot(e))
    }
}

/// Convenience alias.
pub type ServeResult<T> = Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ServeError::UnknownGraph("g".into())
            .to_string()
            .contains("`g`"));
        assert!(ServeError::BadName("a b".into())
            .to_string()
            .contains("bad graph name"));
        assert!(ServeError::corrupt("x.snap", "bad magic")
            .to_string()
            .contains("x.snap"));
        assert!(ServeError::Protocol("nope".into())
            .to_string()
            .contains("nope"));
        assert!(ServeError::Analyze("boom".into())
            .to_string()
            .contains("analyze: boom"));
        assert!(ServeError::Wedged.to_string().contains("reopen"));
    }
}
