//! Local clustering coefficients — a community-structure kernel beyond the
//! paper's three, exercising `getNeighbors` + `existsEdge` together (the
//! combination §6.3 microbenchmarks separately). Runs on any representation.

use crate::vertex_centric::{run_vertex_centric, VertexCentricConfig, VertexProgram};
use graphgen_graph::{GraphRep, RealId};

struct Clustering;

impl<G: GraphRep + Sync> VertexProgram<G> for Clustering {
    type State = f64;

    fn init(&self, _g: &G, _u: RealId) -> f64 {
        0.0
    }

    fn compute(&self, g: &G, u: RealId, _prev: &[f64], _step: usize) -> (f64, bool) {
        // Undirected clustering over reciprocated edges.
        let nbrs: Vec<RealId> = g
            .neighbors(u)
            .into_iter()
            .filter(|&v| g.exists_edge(v, u))
            .collect();
        let k = nbrs.len();
        if k < 2 {
            return (0.0, true);
        }
        let mut closed = 0usize;
        for i in 0..k {
            for j in (i + 1)..k {
                if g.exists_edge(nbrs[i], nbrs[j]) && g.exists_edge(nbrs[j], nbrs[i]) {
                    closed += 1;
                }
            }
        }
        ((2.0 * closed as f64) / (k * (k - 1)) as f64, true)
    }
}

/// Local clustering coefficient of every vertex (0 for degree < 2 and dead
/// vertices). Multithreaded via the vertex-centric framework.
pub fn clustering_coefficients<G: GraphRep + Sync>(g: &G, threads: usize) -> Vec<f64> {
    let (states, _) = run_vertex_centric(
        g,
        &Clustering,
        VertexCentricConfig {
            threads,
            max_supersteps: 1,
        },
    );
    states
}

/// Graph-average clustering coefficient over live vertices.
pub fn average_clustering<G: GraphRep + Sync>(g: &G, threads: usize) -> f64 {
    let coeffs = clustering_coefficients(g, threads);
    let n = g.num_vertices();
    if n == 0 {
        return 0.0;
    }
    g.vertices().map(|u| coeffs[u.0 as usize]).sum::<f64>() / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_graph::{CondensedBuilder, ExpandedGraph};

    fn undirected(n: usize, pairs: &[(u32, u32)]) -> ExpandedGraph {
        ExpandedGraph::from_edges(n, pairs.iter().flat_map(|&(a, b)| [(a, b), (b, a)]))
    }

    #[test]
    fn triangle_is_fully_clustered() {
        let g = undirected(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(clustering_coefficients(&g, 1), vec![1.0, 1.0, 1.0]);
        assert!((average_clustering(&g, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_has_zero_clustering() {
        let g = undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(average_clustering(&g, 2), 0.0);
    }

    #[test]
    fn square_with_diagonal() {
        // 0-1-2-3-0 plus 0-2: vertices 1 and 3 have neighbors {0,2} which
        // are connected -> c=1; vertices 0,2 have 3 neighbors with 2 of 3
        // pairs closed... (0's nbrs {1,2,3}: pairs (1,2) yes, (1,3) no,
        // (2,3) yes -> 2/3.
        let g = undirected(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let c = clustering_coefficients(&g, 1);
        assert!((c[1] - 1.0).abs() < 1e-12);
        assert!((c[3] - 1.0).abs() < 1e-12);
        assert!((c[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((c[2] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn condensed_cliques_cluster_fully() {
        // A virtual-node clique is, by definition, fully clustered.
        let mut b = CondensedBuilder::new(5);
        b.clique(&[RealId(0), RealId(1), RealId(2), RealId(3)]);
        let g = b.build();
        let c = clustering_coefficients(&g, 1);
        for (i, &ci) in c.iter().enumerate().take(4) {
            assert!((ci - 1.0).abs() < 1e-12, "vertex {i}: {ci}");
        }
        assert_eq!(c[4], 0.0);
    }

    #[test]
    fn agrees_across_representations() {
        let mut b = CondensedBuilder::new(8);
        let ids: Vec<RealId> = (0..8).map(RealId).collect();
        b.clique(&ids[0..4]);
        b.clique(&ids[2..7]);
        let cdup = b.build();
        let exp = ExpandedGraph::from_rep(&cdup);
        assert_eq!(
            clustering_coefficients(&cdup, 2),
            clustering_coefficients(&exp, 2)
        );
    }
}
