//! Quickstart: extract a hidden co-author graph from relational tables and
//! run an algorithm on it — the paper's Fig. 1 flow in ~40 lines.
//!
//! Run with: `cargo run --example quickstart`

use graphgen::core::{serialize, GraphGen};
use graphgen::graph::GraphRep;
use graphgen::reldb::{Column, Database, Schema, Table, Value};

fn main() {
    // 1. A relational database: authors and an author↔publication table.
    let mut author = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
    for (id, name) in [(1, "Ada"), (2, "Barbara"), (3, "Grace"), (4, "Hedy"), (5, "Mary")] {
        author.push_row(vec![Value::int(id), Value::str(name)]).unwrap();
    }
    let mut author_pub = Table::new(Schema::new(vec![Column::int("aid"), Column::int("pid")]));
    for (aid, pid) in [(1, 1), (2, 1), (4, 1), (1, 2), (4, 2), (3, 3), (4, 3), (5, 3)] {
        author_pub
            .push_row(vec![Value::int(aid), Value::int(pid)])
            .unwrap();
    }
    let mut db = Database::new();
    db.register("Author", author).unwrap();
    db.register("AuthorPub", author_pub).unwrap();

    // 2. Declare the hidden graph in the Datalog DSL ([Q1] from the paper).
    let query = "
        Nodes(ID, Name) :- Author(ID, Name).
        Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID).
    ";

    // 3. Extract. GraphGen decides per join whether to postpone it into a
    //    condensed representation or hand it to the relational engine.
    let gg = GraphGen::new(&db);
    let graph = gg.extract(query).expect("extraction");
    println!(
        "extracted {} vertices, {} logical edges ({} stored), representation: {:?}",
        graph.graph.num_vertices(),
        graph.graph.expanded_edge_count(),
        graph.graph.stored_edge_count(),
        graph.graph.kind(),
    );
    for sql in &graph.report.sql {
        println!("generated SQL: {sql}");
    }

    // 4. Use the representation-independent Graph API.
    for u in graph.graph.vertices() {
        let name = graph
            .properties
            .get(u, "Name")
            .and_then(|p| p.as_text().map(str::to_string))
            .unwrap_or_default();
        let coauthors: Vec<String> = graph
            .graph
            .neighbors(u)
            .iter()
            .map(|&v| graph.key_of(v).to_string())
            .collect();
        println!("{name:>8} ({}) -> {coauthors:?}", graph.key_of(u));
    }

    // 5. Run PageRank through the multithreaded vertex-centric framework.
    let ranks = graphgen::algo::pagerank(&graph.graph, Default::default());
    let mut ranked: Vec<(f64, &str)> = graph
        .graph
        .vertices()
        .map(|u| {
            (
                ranks[u.0 as usize],
                graph
                    .properties
                    .get(u, "Name")
                    .and_then(|p| p.as_text())
                    .unwrap_or(""),
            )
        })
        .collect();
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
    println!("\nPageRank:");
    for (r, name) in ranked {
        println!("  {name:>8}: {r:.4}");
    }

    // 6. Serialize for external tools (NetworkX-style edge list).
    let mut out = Vec::new();
    serialize::write_edge_list(&graph, &mut out).unwrap();
    println!("\nedge list:\n{}", String::from_utf8(out).unwrap());
}
