//! Incremental extraction: maintain the hidden graph under base-table
//! updates instead of re-running the segment queries from scratch.
//!
//! The paper's GraphGen treats the database as read-only; the ROADMAP flags
//! from-scratch re-extraction as the next scaling ceiling for serving live
//! traffic. This module applies FO+MOD-style delta processing (Berkholz et
//! al., PAPERS.md) to the extraction plan: a [`Delta`] produced by the
//! `reldb` mutation API is pushed through every segment query with work
//! proportional to the delta, and the condensed graph is patched in place.
//!
//! # How a delta propagates
//!
//! Extraction compiles each `Edges` chain into segment queries
//! `res_j(x, y) :- S_1(x, a_1), …, S_m(a_{m-1}, y)` (see
//! [`crate::planner`]). For each segment the [`IncrementalState`] maintains:
//!
//! * per **atom**: the filtered, projected `(in, out)` pairs of the base
//!   table as a multiset, hash-indexed by both columns (the state the
//!   delta-join rules probe);
//! * per **segment**: the bag multiplicity (`support`) of every output
//!   pair, which makes `DISTINCT` incremental — a pair enters the graph
//!   when its support rises from zero and leaves when it returns to zero
//!   (the same hash-of-row identity the `DISTINCT` operator uses);
//! * per **boundary** between segments: the virtual-node interning map
//!   (join-attribute value → [`VirtId`]).
//!
//! A delta against table `T` touches only the atoms scanning `T`. For each
//! changed atom, the signed delta rows are joined with the *unchanged*
//! sides — the prefix atoms at their post-update state, the suffix atoms at
//! their pre-update state (the classic telescoping sum), each probe walking
//! the atom hash indexes, morsel-parallel over the delta rows via
//! `graphgen_common::parallel` — so the work is `O(|Δ| × join fan-out)`,
//! never `O(|database|)`.
//!
//! # How the graph is patched
//!
//! Support transitions become condensed-graph operations: segment-0 pairs
//! are `real → virtual` membership edges, middle-segment pairs are
//! `virtual → virtual` edges, last-segment pairs are `virtual → real`
//! edges, and single-segment chains contribute direct `real → real` edges
//! (reference-counted across chains). `Nodes`-view deltas add, remove, or
//! revive real vertices and re-derive their properties.
//!
//! Two application paths exist:
//!
//! * **mirror** — the handle still holds the C-DUP graph extraction built:
//!   operations apply directly to it (a patch costs a handful of sorted
//!   adjacency-list edits);
//! * **generic** — the handle was converted to EXP / DEDUP-1 / DEDUP-2 /
//!   BITMAP: the state keeps a pristine condensed *shadow*, applies the
//!   structural operation there, derives the resulting **logical** edge
//!   diff (re-probing only the affected virtual node's reach), and replays
//!   it through the representation's own 7-operation mutation API.
//!
//! Correctness contract: after any sequence of deltas, the patched handle's
//! canonical serialization ([`crate::serialize::canonical_bytes`]) is
//! byte-identical to a from-scratch extraction on the mutated database —
//! enforced by `tests/incremental_oracle.rs` at 1/2/8 threads.

use crate::anygraph::AnyGraph;
use crate::error::{Error, PatchError};
use crate::planner::{filters_to_predicate, ChainPlan};
use graphgen_common::parallel::{effective_threads, map_morsels};
use graphgen_common::{FxHashMap, FxHashSet, IdMap};
use graphgen_dsl::GraphSpec;
use graphgen_graph::{CondensedGraph, GraphRep, PropValue, Properties, RealId, VirtId};
use graphgen_reldb::{Delta, DeltaOp, Interner, Predicate, Value, Vid, NULL_VID};

/// A per-value multiplicity index over interned ids: slot `v` holds the
/// `(other column id → count)` bag of join value `v`. Flat `Vec` indexing
/// replaces the former `HashMap<Value, …>` outer layer — a delta probe is
/// an array load instead of a value hash + pointer chase, which is what
/// made publish latency scale with database size.
type VidBag = Vec<FxHashMap<Vid, i64>>;

/// Pack an output pair of interned ids into one machine word (support-map
/// key). Ordering of the packed form equals lexicographic `(l, r)` order.
#[inline]
fn pack(l: Vid, r: Vid) -> u64 {
    (u64::from(l) << 32) | u64::from(r)
}

#[inline]
fn unpack(key: u64) -> (Vid, Vid) {
    ((key >> 32) as Vid, key as Vid)
}

/// What [`crate::GraphHandle::apply_delta`] did, for reporting and
/// benchmarking. All counters are in units of applied operations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphPatch {
    /// Fresh real vertices added for never-before-seen node keys.
    pub nodes_added: usize,
    /// Previously deleted vertices brought back by a re-appearing key.
    pub nodes_revived: usize,
    /// Vertices logically removed because their key left every node view.
    pub nodes_removed: usize,
    /// Virtual nodes created for new join-attribute values.
    pub virtuals_added: usize,
    /// Stored (condensed-level) edges inserted.
    pub stored_edges_added: usize,
    /// Stored (condensed-level) edges removed.
    pub stored_edges_removed: usize,
    /// Logical edge insertions replayed through a converted
    /// representation's mutation API (generic path only).
    pub logical_edges_added: usize,
    /// Logical edge removals replayed through a converted representation's
    /// mutation API (generic path only).
    pub logical_edges_removed: usize,
}

impl GraphPatch {
    /// True if the delta changed nothing in the graph.
    pub fn is_empty(&self) -> bool {
        *self == GraphPatch::default()
    }

    /// Accumulate another patch's counters into this one (handy when
    /// applying a sequence of deltas and reporting totals).
    pub fn merge(&mut self, other: &GraphPatch) {
        self.nodes_added += other.nodes_added;
        self.nodes_revived += other.nodes_revived;
        self.nodes_removed += other.nodes_removed;
        self.virtuals_added += other.virtuals_added;
        self.stored_edges_added += other.stored_edges_added;
        self.stored_edges_removed += other.stored_edges_removed;
        self.logical_edges_added += other.logical_edges_added;
        self.logical_edges_removed += other.logical_edges_removed;
    }
}

// ---------------------------------------------------------------------------
// State
// ---------------------------------------------------------------------------

/// One `Nodes` view with its filter pre-compiled to a [`Predicate`].
#[derive(Debug, Clone)]
struct ViewState {
    relation: String,
    id_col: usize,
    /// `(property name, column)` pairs from the view head.
    prop_cols: Vec<(String, usize)>,
    pred: Predicate,
}

/// A node key's standing across all `Nodes` views: how many base rows
/// currently yield it, and the property values each of those rows derived
/// (kept so properties can be re-derived after a partial delete).
#[derive(Debug, Clone, Default)]
struct NodeEntry {
    support: i64,
    /// `(view index, derived properties)` in arrival order.
    prop_rows: Vec<(usize, Vec<(String, PropValue)>)>,
}

/// One atom of a segment query: the filtered base table projected to its
/// `(in, out)` join columns, as a multiset indexed both ways.
#[derive(Debug, Clone)]
struct AtomState {
    table: String,
    pred: Predicate,
    in_col: usize,
    out_col: usize,
    /// `in id → (out id → multiplicity)`.
    by_in: VidBag,
    /// `out id → (in id → multiplicity)`.
    by_out: VidBag,
}

/// The maintained output of one segment query.
#[derive(Debug, Clone)]
struct SegmentState {
    atoms: Vec<AtomState>,
    /// Bag multiplicity of each output pair (the incremental `DISTINCT`),
    /// keyed by the [`pack`]ed interned endpoint ids.
    support: FxHashMap<u64, i64>,
    /// Distinct output indexed by left endpoint id (flat slot per id).
    by_left: Vec<FxHashSet<Vid>>,
    /// Distinct output indexed by right endpoint id (flat slot per id).
    by_right: Vec<FxHashSet<Vid>>,
}

/// The maintained state of one `Edges` chain.
#[derive(Debug, Clone)]
struct ChainState {
    segments: Vec<SegmentState>,
    /// Per boundary between segments: interned id → boundary-local dense
    /// index (`u32::MAX` = not seen at this boundary), flat-indexed by id.
    boundary_index: Vec<Vec<u32>>,
    /// Per boundary: boundary-local index → the id it was allocated for
    /// (the interning order, persisted so recovery continues identically).
    boundary_keys: Vec<Vec<Vid>>,
    /// Per boundary: boundary-local index → allocated virtual node.
    boundary_virts: Vec<Vec<VirtId>>,
}

/// The condensed shadow kept once a handle leaves C-DUP: the pristine
/// structure extraction maintains, plus reverse indexes so logical edge
/// diffs can be derived by re-probing only the affected virtual nodes.
#[derive(Debug, Clone)]
struct ShadowCore {
    g: CondensedGraph,
    /// Per virtual node: real sources with an edge to it.
    virt_in_reals: Vec<FxHashSet<u32>>,
    /// Per virtual node: virtual sources with an edge to it.
    virt_in_virts: Vec<FxHashSet<u32>>,
    /// Per real target: virtual nodes with an edge to it.
    real_in_virts: FxHashMap<u32, FxHashSet<u32>>,
    /// Per real target: real sources with a *direct* edge to it.
    real_in_reals: FxHashMap<u32, FxHashSet<u32>>,
}

/// Everything needed to maintain an extracted graph under base-table
/// deltas. Owned by the [`crate::GraphHandle`] when extraction ran with
/// [`crate::GraphGenConfig`]'s `incremental(true)`; survives
/// representation conversions.
#[derive(Debug, Clone)]
pub struct IncrementalState {
    threads: usize,
    views: Vec<ViewState>,
    chains: Vec<ChainState>,
    node_entries: FxHashMap<Vid, NodeEntry>,
    /// Cross-chain reference counts of direct real→real pairs, keyed by
    /// the [`pack`]ed interned endpoint ids.
    direct_support: FxHashMap<u64, i64>,
    /// The engine dictionary: every join value, boundary attribute, and
    /// node key that ever entered a keyed structure, interned to a dense
    /// [`Vid`]. Grow-only (interned via [`Interner::intern`], which pins
    /// slots), so a `Vid` stored anywhere in this state stays resolvable
    /// for the lifetime of the handle and across snapshot round-trips.
    dict: Interner,
    /// Flat `Vid` → real node id side-table (`u32::MAX` = the id is not a
    /// node key). Pure cache over the handle's `IdMap` — the id map is
    /// append-only, so entries never invalidate — letting the hot
    /// materialize paths resolve an endpoint with one array load instead
    /// of a value hash into the id map. Not persisted: rebuilt from the
    /// dictionary + id map when a snapshot is decoded
    /// ([`IncrementalState::rebuild_real_ids`]), and maintained by the
    /// node-add path during live applies.
    real_ids: Vec<u32>,
    shadow: Option<ShadowCore>,
}

impl IncrementalState {
    /// Build the (empty) maintenance state for a compiled spec and its
    /// plans. The caller then replays every base table as an insert-only
    /// delta to reach the current database state (one code path for initial
    /// extraction and live maintenance).
    pub(crate) fn new(spec: &GraphSpec, plans: &[ChainPlan], threads: usize) -> Self {
        let views = spec
            .nodes
            .iter()
            .map(|v| ViewState {
                relation: v.relation.clone(),
                id_col: v.id_col,
                prop_cols: v.prop_cols.clone(),
                pred: filters_to_predicate(&v.filters),
            })
            .collect();
        let chains = plans
            .iter()
            .map(|plan| {
                let segments: Vec<SegmentState> = plan
                    .segments
                    .iter()
                    .map(|seg| SegmentState {
                        atoms: seg
                            .query
                            .steps
                            .iter()
                            .map(|step| AtomState {
                                table: step.table.clone(),
                                pred: step.pred.clone(),
                                in_col: step.in_col,
                                out_col: step.out_col,
                                by_in: VidBag::default(),
                                by_out: VidBag::default(),
                            })
                            .collect(),
                        support: FxHashMap::default(),
                        by_left: Vec::new(),
                        by_right: Vec::new(),
                    })
                    .collect();
                let boundaries = segments.len().saturating_sub(1);
                ChainState {
                    segments,
                    boundary_index: vec![Vec::new(); boundaries],
                    boundary_keys: vec![Vec::new(); boundaries],
                    boundary_virts: vec![Vec::new(); boundaries],
                }
            })
            .collect();
        Self {
            threads,
            views,
            chains,
            node_entries: FxHashMap::default(),
            direct_support: FxHashMap::default(),
            dict: Interner::new(),
            real_ids: Vec::new(),
            shadow: None,
        }
    }

    /// Rebuild the `Vid` → real-id side-table from scratch (snapshot
    /// decode path: the cache is not persisted). Every dictionary slot is
    /// probed once against the id map; ids interned after this call are
    /// added by the live node-add path.
    pub(crate) fn rebuild_real_ids(&mut self, ids: &IdMap<Value>) {
        self.real_ids = (0..self.dict.capacity() as Vid)
            .map(|vid| {
                self.dict
                    .resolve(vid)
                    .and_then(|v| ids.get(v))
                    .unwrap_or(u32::MAX)
            })
            .collect();
    }

    /// The engine dictionary's live entry count (observability: the
    /// `graphgen_intern_entries` gauge).
    pub fn intern_entries(&self) -> usize {
        self.dict.live()
    }

    /// Every base table the spec reads, in deterministic first-reference
    /// order (node views first, then chain atoms). Exposed to callers via
    /// `GraphHandle::referenced_tables`.
    pub(crate) fn referenced_tables(&self) -> Vec<String> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        let names = self.views.iter().map(|v| v.relation.as_str()).chain(
            self.chains
                .iter()
                .flat_map(|c| c.segments.iter())
                .flat_map(|s| s.atoms.iter())
                .map(|a| a.table.as_str()),
        );
        for name in names {
            if seen.insert(name.to_string()) {
                out.push(name.to_string());
            }
        }
        out
    }

    /// The worker-thread count delta probes fan out over.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Override the worker-thread count delta probes fan out over. Results
    /// are byte-identical for any value (clamped to ≥ 1); snapshots record
    /// the count they were encoded with, so a handle recovered on a
    /// different machine applies its own configuration through this.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The pristine condensed structure the state maintains, when the
    /// handle no longer holds it itself (i.e. after a conversion away from
    /// C-DUP).
    pub(crate) fn shadow_graph(&self) -> Option<&CondensedGraph> {
        self.shadow.as_ref().map(|s| &s.g)
    }

    /// Install a shadow copy of the pristine condensed graph (called by
    /// `GraphHandle::convert` when leaving C-DUP).
    pub(crate) fn set_shadow(&mut self, core: CondensedGraph) {
        self.shadow = Some(ShadowCore::from_graph(core));
    }

    /// Drop the shadow (called when converting back to C-DUP, which then
    /// holds the pristine structure itself).
    pub(crate) fn drop_shadow(&mut self) {
        self.shadow = None;
    }
}

// ---------------------------------------------------------------------------
// Shadow core
// ---------------------------------------------------------------------------

impl ShadowCore {
    fn from_graph(g: CondensedGraph) -> Self {
        let nv = g.num_virtual();
        let mut virt_in_reals = vec![FxHashSet::default(); nv];
        let mut virt_in_virts = vec![FxHashSet::default(); nv];
        let mut real_in_virts: FxHashMap<u32, FxHashSet<u32>> = FxHashMap::default();
        let mut real_in_reals: FxHashMap<u32, FxHashSet<u32>> = FxHashMap::default();
        for u in 0..g.num_real_slots() as u32 {
            for a in g.real_out(RealId(u)) {
                if let Some(v) = a.as_virtual() {
                    virt_in_reals[v.0 as usize].insert(u);
                } else if let Some(r) = a.as_real() {
                    real_in_reals.entry(r.0).or_default().insert(u);
                }
            }
        }
        for v in 0..nv as u32 {
            for a in g.virt_out(VirtId(v)) {
                if let Some(w) = a.as_virtual() {
                    virt_in_virts[w.0 as usize].insert(v);
                } else if let Some(r) = a.as_real() {
                    real_in_virts.entry(r.0).or_default().insert(v);
                }
            }
        }
        Self {
            g,
            virt_in_reals,
            virt_in_virts,
            real_in_virts,
            real_in_reals,
        }
    }

    /// Alive real nodes reachable *from* `v`, sorted.
    fn fwd_reach(&self, v: VirtId) -> Vec<u32> {
        let mut out = FxHashSet::default();
        self.g.virtual_reach(v, &mut out);
        let mut out: Vec<u32> = out.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Alive real nodes that reach `v` (reverse traversal over the
    /// maintained in-indexes), sorted.
    fn rev_reach(&self, v: VirtId) -> Vec<u32> {
        let mut sources = FxHashSet::default();
        let mut visited = FxHashSet::default();
        let mut stack = vec![v.0];
        visited.insert(v.0);
        while let Some(x) = stack.pop() {
            for &s in &self.virt_in_reals[x as usize] {
                if self.g.is_alive(RealId(s)) {
                    sources.insert(s);
                }
            }
            for &w in &self.virt_in_virts[x as usize] {
                if visited.insert(w) {
                    stack.push(w);
                }
            }
        }
        let mut sources: Vec<u32> = sources.into_iter().collect();
        sources.sort_unstable();
        sources
    }

    /// Alive real nodes with a logical edge *into* `u`, sorted.
    fn in_neighbors_of_real(&self, u: RealId) -> Vec<u32> {
        let mut sources = FxHashSet::default();
        if let Some(direct) = self.real_in_reals.get(&u.0) {
            for &s in direct {
                if self.g.is_alive(RealId(s)) {
                    sources.insert(s);
                }
            }
        }
        if let Some(virts) = self.real_in_virts.get(&u.0) {
            for &v in virts {
                for s in self.rev_reach(VirtId(v)) {
                    sources.insert(s);
                }
            }
        }
        sources.remove(&u.0);
        let mut sources: Vec<u32> = sources.into_iter().collect();
        sources.sort_unstable();
        sources
    }
}

// ---------------------------------------------------------------------------
// Patch target: mirror (C-DUP in place) or generic (shadow + logical replay)
// ---------------------------------------------------------------------------

enum Target<'a> {
    /// The handle still holds the pristine C-DUP graph: patch it directly.
    Mirror(&'a mut CondensedGraph),
    /// The handle holds a converted representation: patch the shadow and
    /// replay the logical diff through the representation's mutation API.
    Generic {
        shadow: &'a mut ShadowCore,
        rep: &'a mut AnyGraph,
    },
}

impl Target<'_> {
    fn add_real_slot(&mut self, patch: &mut GraphPatch) -> RealId {
        patch.nodes_added += 1;
        match self {
            Target::Mirror(g) => g.add_vertex(),
            Target::Generic { shadow, rep } => {
                let a = shadow.g.add_vertex();
                let b = rep.add_vertex();
                debug_assert_eq!(a, b, "shadow and representation slots diverged");
                a
            }
        }
    }

    fn revive(&mut self, u: RealId, patch: &mut GraphPatch) {
        patch.nodes_revived += 1;
        match self {
            Target::Mirror(g) => g.revive_vertex(u),
            Target::Generic { shadow, rep } => {
                shadow.g.revive_vertex(u);
                rep.revive_vertex(u);
                // The representation's slot was purged at kill time (or was
                // compacted empty at conversion); re-add the node's current
                // logical edges from the shadow.
                let mut outs: Vec<u32> = Vec::new();
                shadow.g.for_each_neighbor(u, &mut |t| outs.push(t.0));
                outs.sort_unstable();
                for t in outs {
                    rep.add_edge(u, RealId(t));
                    patch.logical_edges_added += 1;
                }
                for s in shadow.in_neighbors_of_real(u) {
                    rep.add_edge(RealId(s), u);
                    patch.logical_edges_added += 1;
                }
            }
        }
    }

    fn kill(&mut self, u: RealId, patch: &mut GraphPatch) {
        patch.nodes_removed += 1;
        match self {
            Target::Mirror(g) => g.delete_vertex(u),
            Target::Generic { shadow, rep } => {
                // Physically purge the node's logical edges from the
                // representation first, so a later revival starts from a
                // clean slot instead of resurrecting stale adjacency.
                let mut outs: Vec<u32> = Vec::new();
                shadow.g.for_each_neighbor(u, &mut |t| outs.push(t.0));
                outs.sort_unstable();
                for t in outs {
                    rep.delete_edge(u, RealId(t));
                    patch.logical_edges_removed += 1;
                }
                for s in shadow.in_neighbors_of_real(u) {
                    rep.delete_edge(RealId(s), u);
                    patch.logical_edges_removed += 1;
                }
                rep.delete_vertex(u);
                shadow.g.delete_vertex(u);
            }
        }
    }

    fn add_virtual_node(&mut self, patch: &mut GraphPatch) -> VirtId {
        patch.virtuals_added += 1;
        match self {
            Target::Mirror(g) => g.add_virtual_node(),
            Target::Generic { shadow, .. } => {
                let v = shadow.g.add_virtual_node();
                shadow.virt_in_reals.push(FxHashSet::default());
                shadow.virt_in_virts.push(FxHashSet::default());
                v
            }
        }
    }

    fn add_membership(&mut self, u: RealId, v: VirtId, patch: &mut GraphPatch) {
        patch.stored_edges_added += 1;
        match self {
            Target::Mirror(g) => g.insert_real_to_virtual(u, v),
            Target::Generic { shadow, rep } => {
                if shadow.g.is_alive(u) {
                    for t in shadow.fwd_reach(v) {
                        if t != u.0 && !shadow.g.exists_edge(u, RealId(t)) {
                            rep.add_edge(u, RealId(t));
                            patch.logical_edges_added += 1;
                        }
                    }
                }
                shadow.g.insert_real_to_virtual(u, v);
                shadow.virt_in_reals[v.0 as usize].insert(u.0);
            }
        }
    }

    fn remove_membership(&mut self, u: RealId, v: VirtId, patch: &mut GraphPatch) {
        patch.stored_edges_removed += 1;
        match self {
            Target::Mirror(g) => g.detach_real_from_virtual(u, v),
            Target::Generic { shadow, rep } => {
                let candidates = shadow.fwd_reach(v);
                shadow.g.detach_real_from_virtual(u, v);
                shadow.virt_in_reals[v.0 as usize].remove(&u.0);
                if shadow.g.is_alive(u) {
                    for t in candidates {
                        if t != u.0 && !shadow.g.exists_edge(u, RealId(t)) {
                            rep.delete_edge(u, RealId(t));
                            patch.logical_edges_removed += 1;
                        }
                    }
                }
            }
        }
    }

    fn add_virt_to_real(&mut self, v: VirtId, t: RealId, patch: &mut GraphPatch) {
        patch.stored_edges_added += 1;
        match self {
            Target::Mirror(g) => g.insert_virtual_to_real(v, t),
            Target::Generic { shadow, rep } => {
                if shadow.g.is_alive(t) {
                    for s in shadow.rev_reach(v) {
                        if s != t.0 && !shadow.g.exists_edge(RealId(s), t) {
                            rep.add_edge(RealId(s), t);
                            patch.logical_edges_added += 1;
                        }
                    }
                }
                shadow.g.insert_virtual_to_real(v, t);
                shadow.real_in_virts.entry(t.0).or_default().insert(v.0);
            }
        }
    }

    fn remove_virt_to_real(&mut self, v: VirtId, t: RealId, patch: &mut GraphPatch) {
        patch.stored_edges_removed += 1;
        match self {
            Target::Mirror(g) => g.remove_virtual_to_real(v, t),
            Target::Generic { shadow, rep } => {
                shadow.g.remove_virtual_to_real(v, t);
                if let Some(set) = shadow.real_in_virts.get_mut(&t.0) {
                    set.remove(&v.0);
                }
                if shadow.g.is_alive(t) {
                    for s in shadow.rev_reach(v) {
                        if s != t.0 && !shadow.g.exists_edge(RealId(s), t) {
                            rep.delete_edge(RealId(s), t);
                            patch.logical_edges_removed += 1;
                        }
                    }
                }
            }
        }
    }

    fn add_vv(&mut self, v: VirtId, w: VirtId, patch: &mut GraphPatch) {
        patch.stored_edges_added += 1;
        match self {
            Target::Mirror(g) => g.insert_virtual_to_virtual(v, w),
            Target::Generic { shadow, rep } => {
                let sources = shadow.rev_reach(v);
                let targets = shadow.fwd_reach(w);
                let mut adds = Vec::new();
                for &s in &sources {
                    for &t in &targets {
                        if s != t && !shadow.g.exists_edge(RealId(s), RealId(t)) {
                            adds.push((s, t));
                        }
                    }
                }
                shadow.g.insert_virtual_to_virtual(v, w);
                shadow.virt_in_virts[w.0 as usize].insert(v.0);
                for (s, t) in adds {
                    rep.add_edge(RealId(s), RealId(t));
                    patch.logical_edges_added += 1;
                }
            }
        }
    }

    fn remove_vv(&mut self, v: VirtId, w: VirtId, patch: &mut GraphPatch) {
        patch.stored_edges_removed += 1;
        match self {
            Target::Mirror(g) => g.remove_virtual_to_virtual(v, w),
            Target::Generic { shadow, rep } => {
                let sources = shadow.rev_reach(v);
                let targets = shadow.fwd_reach(w);
                shadow.g.remove_virtual_to_virtual(v, w);
                shadow.virt_in_virts[w.0 as usize].remove(&v.0);
                for &s in &sources {
                    for &t in &targets {
                        if s != t && !shadow.g.exists_edge(RealId(s), RealId(t)) {
                            rep.delete_edge(RealId(s), RealId(t));
                            patch.logical_edges_removed += 1;
                        }
                    }
                }
            }
        }
    }

    fn add_direct(&mut self, u: RealId, t: RealId, patch: &mut GraphPatch) {
        patch.stored_edges_added += 1;
        match self {
            Target::Mirror(g) => g.insert_direct(u, t),
            Target::Generic { shadow, rep } => {
                if shadow.g.is_alive(u) && shadow.g.is_alive(t) && !shadow.g.exists_edge(u, t) {
                    rep.add_edge(u, t);
                    patch.logical_edges_added += 1;
                }
                shadow.g.insert_direct(u, t);
                shadow.real_in_reals.entry(t.0).or_default().insert(u.0);
            }
        }
    }

    fn remove_direct(&mut self, u: RealId, t: RealId, patch: &mut GraphPatch) {
        patch.stored_edges_removed += 1;
        match self {
            Target::Mirror(g) => g.remove_direct(u, t),
            Target::Generic { shadow, rep } => {
                shadow.g.remove_direct(u, t);
                if let Some(set) = shadow.real_in_reals.get_mut(&t.0) {
                    set.remove(&u.0);
                }
                if shadow.g.is_alive(u) && shadow.g.is_alive(t) && !shadow.g.exists_edge(u, t) {
                    rep.delete_edge(u, t);
                    patch.logical_edges_removed += 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Delta-join propagation through one segment
// ---------------------------------------------------------------------------

/// Walk left from atom `j`: the bag of segment-left endpoints `X` reachable
/// from join id `v` through atoms `j-1 … 0` (each crossing is a flat slot
/// load — the "re-probe only the changed side" rule). [`NULL_VID`] never
/// crosses a join, matching the hash-join operator.
fn expand_left(atoms: &[AtomState], j: usize, v: Vid) -> FxHashMap<Vid, i64> {
    let mut frontier: FxHashMap<Vid, i64> = FxHashMap::default();
    frontier.insert(v, 1);
    for i in (0..j).rev() {
        let mut next: FxHashMap<Vid, i64> = FxHashMap::default();
        for (&val, m) in &frontier {
            if val == NULL_VID {
                continue;
            }
            if let Some(ins) = atoms[i].by_out.get(val as usize) {
                for (&in_v, mi) in ins {
                    *next.entry(in_v).or_insert(0) += m * mi;
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    frontier
}

/// Walk right from atom `j`: the bag of segment-right endpoints `Y`
/// reachable from join id `v` through atoms `j+1 … m-1`.
fn expand_right(atoms: &[AtomState], j: usize, v: Vid) -> FxHashMap<Vid, i64> {
    let mut frontier: FxHashMap<Vid, i64> = FxHashMap::default();
    frontier.insert(v, 1);
    for atom in atoms.iter().skip(j + 1) {
        let mut next: FxHashMap<Vid, i64> = FxHashMap::default();
        for (&val, m) in &frontier {
            if val == NULL_VID {
                continue;
            }
            if let Some(outs) = atom.by_in.get(val as usize) {
                for (&out_v, mo) in outs {
                    *next.entry(out_v).or_insert(0) += m * mo;
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    frontier
}

/// Add `mult` to `bag[key][val]`, erroring if a multiplicity would go
/// negative (a delta that deletes rows the table never held). Grows the
/// flat outer `Vec` on demand; empty inner maps stay allocated (a handful
/// of machine words per id ever seen — the price of O(1) slot loads).
fn bump(bag: &mut VidBag, key: Vid, val: Vid, mult: i64, dict: &Interner) -> Result<(), Error> {
    if bag.len() <= key as usize {
        bag.resize_with(key as usize + 1, FxHashMap::default);
    }
    let inner = &mut bag[key as usize];
    let slot = inner.entry(val).or_insert(0);
    *slot += mult;
    if *slot < 0 {
        let k = dict.resolve(key).cloned().unwrap_or(Value::Null);
        let v = dict.resolve(val).cloned().unwrap_or(Value::Null);
        return Err(PatchError::Inconsistent(format!(
            "delta drives multiplicity of ({k}, {v}) negative"
        ))
        .into());
    }
    if *slot == 0 {
        inner.remove(&val);
    }
    Ok(())
}

/// Insert `r` into the flat set at slot `l`, growing on demand.
fn flat_insert(index: &mut Vec<FxHashSet<Vid>>, l: Vid, r: Vid) {
    if index.len() <= l as usize {
        index.resize_with(l as usize + 1, FxHashSet::default);
    }
    index[l as usize].insert(r);
}

/// Remove `r` from the flat set at slot `l` (empty sets stay allocated).
fn flat_remove(index: &mut [FxHashSet<Vid>], l: Vid, r: Vid) {
    if let Some(set) = index.get_mut(l as usize) {
        set.remove(&r);
    }
}

impl SegmentState {
    /// Propagate a table delta through this segment: telescoping delta
    /// joins per changed atom (prefix atoms at their new state, suffix
    /// atoms at their old state), morsel-parallel over the delta rows, then
    /// support-count transitions for the incremental DISTINCT.
    ///
    /// Returns the output pairs that (dis)appeared as interned-id pairs,
    /// each sorted for deterministic downstream interning at every thread
    /// count. Interning of delta values happens in the sequential
    /// projection loop, never inside the parallel expansion — so id
    /// assignment (and with it every downstream order) is independent of
    /// the thread count.
    #[allow(clippy::type_complexity)]
    fn transitions(
        &mut self,
        delta: &Delta,
        threads: usize,
        dict: &mut Interner,
    ) -> Result<(Vec<(Vid, Vid)>, Vec<(Vid, Vid)>), Error> {
        let mut sdelta: FxHashMap<u64, i64> = FxHashMap::default();
        for j in 0..self.atoms.len() {
            if self.atoms[j].table != delta.table() {
                continue;
            }
            // Project the delta rows through the atom's predicate,
            // interning the join values (sequential: see above).
            let mut dj: FxHashMap<u64, i64> = FxHashMap::default();
            for row in delta.rows() {
                if !self.atoms[j].pred.eval(&row.values) {
                    continue;
                }
                let in_v = dict.intern(&row.values[self.atoms[j].in_col]);
                let out_v = dict.intern(&row.values[self.atoms[j].out_col]);
                *dj.entry(pack(in_v, out_v)).or_insert(0) += row.op.sign();
            }
            dj.retain(|_, m| *m != 0);
            if dj.is_empty() {
                continue;
            }
            let entries: Vec<(u64, i64)> = dj.into_iter().collect();
            // Delta join: expand every changed row against the unchanged
            // sides. Atoms before `j` were already advanced to their new
            // state by earlier loop iterations; atoms after `j` are still
            // old — the exact telescoping decomposition of the delta.
            let atoms = &self.atoms;
            let t = effective_threads(threads, entries.len());
            let parts = map_morsels(entries.len(), t, |range| {
                let mut local: FxHashMap<u64, i64> = FxHashMap::default();
                for (key, mult) in &entries[range] {
                    let (in_v, out_v) = unpack(*key);
                    let lefts = expand_left(atoms, j, in_v);
                    if lefts.is_empty() {
                        continue;
                    }
                    let rights = expand_right(atoms, j, out_v);
                    for (&x, ml) in &lefts {
                        for (&y, mr) in &rights {
                            *local.entry(pack(x, y)).or_insert(0) += mult * ml * mr;
                        }
                    }
                }
                local
            });
            for part in parts {
                for (k, v) in part {
                    *sdelta.entry(k).or_insert(0) += v;
                }
            }
            // Advance atom j to its post-delta state. A single-atom
            // segment's bags are never probed — the delta join only walks
            // the bags of *other* atoms in the same segment, and the
            // segment-level `by_left`/`by_right` indexes (not the atom
            // bags) serve node materialization — so the graph-sized,
            // cache-cold maps need not be maintained at all (they simply
            // stay empty, on the initial replay and live path alike).
            if self.atoms.len() > 1 {
                let atom = &mut self.atoms[j];
                for (key, mult) in &entries {
                    let (in_v, out_v) = unpack(*key);
                    bump(&mut atom.by_in, in_v, out_v, *mult, dict)?;
                    bump(&mut atom.by_out, out_v, in_v, *mult, dict)?;
                }
            }
        }
        sdelta.retain(|_, d| *d != 0);
        // Support transitions, in sorted id-pair order so virtual-node
        // interning is identical for every thread count (id assignment is
        // sequential, so the order is as deterministic as the former
        // value-pair sort — just an integer compare instead).
        let mut changes: Vec<(u64, i64)> = sdelta.into_iter().collect();
        changes.sort_unstable_by_key(|&(k, _)| k);
        let mut added = Vec::new();
        let mut removed = Vec::new();
        for (key, d) in changes {
            let (l, r) = unpack(key);
            // One entry-API probe of the (graph-sized, usually cold)
            // support map per changed pair: the common no-transition case
            // (old > 0, new > 0) touches it exactly once.
            let (old, new) = match self.support.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let old = *e.get();
                    let new = old + d;
                    if new == 0 {
                        e.remove();
                    } else {
                        *e.get_mut() = new;
                    }
                    (old, new)
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    if d > 0 {
                        e.insert(d);
                    }
                    (0, d)
                }
            };
            if new < 0 {
                let lv = dict.resolve(l).cloned().unwrap_or(Value::Null);
                let rv = dict.resolve(r).cloned().unwrap_or(Value::Null);
                return Err(PatchError::Inconsistent(format!(
                    "delta drives support of output pair ({lv}, {rv}) negative"
                ))
                .into());
            }
            if old == 0 && new > 0 {
                flat_insert(&mut self.by_left, l, r);
                flat_insert(&mut self.by_right, r, l);
                added.push((l, r));
            } else if old > 0 && new == 0 {
                flat_remove(&mut self.by_left, l, r);
                flat_remove(&mut self.by_right, r, l);
                removed.push((l, r));
            }
        }
        Ok((added, removed))
    }
}

// ---------------------------------------------------------------------------
// Materialization: segment transitions -> graph operations
// ---------------------------------------------------------------------------

/// Intern a boundary id, allocating its virtual node on first sight. The
/// flat `boundary_index` slot array makes the common repeat case a single
/// array load.
fn ensure_virt(
    boundary_index: &mut [Vec<u32>],
    boundary_keys: &mut [Vec<Vid>],
    boundary_virts: &mut [Vec<VirtId>],
    b: usize,
    vid: Vid,
    target: &mut Target<'_>,
    patch: &mut GraphPatch,
) -> VirtId {
    let index = &mut boundary_index[b];
    if index.len() <= vid as usize {
        index.resize(vid as usize + 1, u32::MAX);
    }
    if index[vid as usize] == u32::MAX {
        index[vid as usize] = boundary_keys[b].len() as u32;
        boundary_keys[b].push(vid);
        let v = target.add_virtual_node(patch);
        boundary_virts[b].push(v);
    }
    boundary_virts[b][index[vid as usize] as usize]
}

/// Resolve an interned id to its real node id via the flat side-table —
/// one array load, no value hash. A `Vid` beyond the table (interned
/// after the last rebuild/add) or mapped to the sentinel is not a node
/// key, exactly as an id-map miss would report.
#[inline]
fn real_from(real_ids: &[u32], vid: Vid) -> Option<u32> {
    real_ids
        .get(vid as usize)
        .copied()
        .filter(|&id| id != u32::MAX)
}

#[allow(clippy::too_many_arguments)]
fn materialize_segment(
    chain: &mut ChainState,
    j: usize,
    added: &[(Vid, Vid)],
    removed: &[(Vid, Vid)],
    direct_support: &mut FxHashMap<u64, i64>,
    real_ids: &[u32],
    dict: &Interner,
    target: &mut Target<'_>,
    patch: &mut GraphPatch,
) -> Result<(), Error> {
    let _span =
        graphgen_common::metrics::span("build_rep", graphgen_common::region::Region::BuildRep);
    let k = chain.segments.len();
    let ChainState {
        boundary_index,
        boundary_keys,
        boundary_virts,
        ..
    } = chain;
    if k == 1 {
        // Single-segment chain: the database-computed edge list. Direct
        // edges are reference-counted across chains, since several Edges
        // rules may yield the same pair.
        for &(x, y) in added {
            let s = direct_support.entry(pack(x, y)).or_insert(0);
            *s += 1;
            if *s == 1 && x != y {
                if let (Some(u), Some(v)) = (real_from(real_ids, x), real_from(real_ids, y)) {
                    target.add_direct(RealId(u), RealId(v), patch);
                }
            }
        }
        for &(x, y) in removed {
            let key = pack(x, y);
            let s = direct_support.entry(key).or_insert(0);
            *s -= 1;
            if *s < 0 {
                let xv = dict.resolve(x).cloned().unwrap_or(Value::Null);
                let yv = dict.resolve(y).cloned().unwrap_or(Value::Null);
                return Err(PatchError::Inconsistent(format!(
                    "direct-edge support of ({xv}, {yv}) went negative"
                ))
                .into());
            }
            if *s == 0 {
                direct_support.remove(&key);
                if x != y {
                    if let (Some(u), Some(v)) = (real_from(real_ids, x), real_from(real_ids, y)) {
                        target.remove_direct(RealId(u), RealId(v), patch);
                    }
                }
            }
        }
        return Ok(());
    }
    // Multi-segment chain: boundary attributes materialize as virtual
    // nodes. Membership edges are kept for *every interned* key, alive or
    // not, so a node whose key later reappears revives with its adjacency
    // intact; keys that never were nodes contribute no edges until a node
    // add materializes them from the segment indexes.
    for &(l, r) in added {
        match (j == 0, j == k - 1) {
            (true, false) => {
                let v = ensure_virt(
                    boundary_index,
                    boundary_keys,
                    boundary_virts,
                    0,
                    r,
                    target,
                    patch,
                );
                if let Some(u) = real_from(real_ids, l) {
                    target.add_membership(RealId(u), v, patch);
                }
            }
            (false, true) => {
                let v = ensure_virt(
                    boundary_index,
                    boundary_keys,
                    boundary_virts,
                    k - 2,
                    l,
                    target,
                    patch,
                );
                if let Some(t) = real_from(real_ids, r) {
                    target.add_virt_to_real(v, RealId(t), patch);
                }
            }
            (false, false) => {
                let vl = ensure_virt(
                    boundary_index,
                    boundary_keys,
                    boundary_virts,
                    j - 1,
                    l,
                    target,
                    patch,
                );
                let vr = ensure_virt(
                    boundary_index,
                    boundary_keys,
                    boundary_virts,
                    j,
                    r,
                    target,
                    patch,
                );
                target.add_vv(vl, vr, patch);
            }
            (true, true) => unreachable!("k > 1"),
        }
    }
    for &(l, r) in removed {
        match (j == 0, j == k - 1) {
            (true, false) => {
                let v = ensure_virt(
                    boundary_index,
                    boundary_keys,
                    boundary_virts,
                    0,
                    r,
                    target,
                    patch,
                );
                if let Some(u) = real_from(real_ids, l) {
                    target.remove_membership(RealId(u), v, patch);
                }
            }
            (false, true) => {
                let v = ensure_virt(
                    boundary_index,
                    boundary_keys,
                    boundary_virts,
                    k - 2,
                    l,
                    target,
                    patch,
                );
                if let Some(t) = real_from(real_ids, r) {
                    target.remove_virt_to_real(v, RealId(t), patch);
                }
            }
            (false, false) => {
                let vl = ensure_virt(
                    boundary_index,
                    boundary_keys,
                    boundary_virts,
                    j - 1,
                    l,
                    target,
                    patch,
                );
                let vr = ensure_virt(
                    boundary_index,
                    boundary_keys,
                    boundary_virts,
                    j,
                    r,
                    target,
                    patch,
                );
                target.remove_vv(vl, vr, patch);
            }
            (true, true) => unreachable!("k > 1"),
        }
    }
    Ok(())
}

/// Materialize every edge a brand-new real node participates in, looked up
/// from the maintained segment indexes (cost proportional to the node's
/// own memberships, not the graph).
fn materialize_node_edges(
    chains: &mut [ChainState],
    key: Vid,
    id: RealId,
    direct_support: &FxHashMap<u64, i64>,
    real_ids: &[u32],
    target: &mut Target<'_>,
    patch: &mut GraphPatch,
) {
    let _span =
        graphgen_common::metrics::span("build_rep", graphgen_common::region::Region::BuildRep);
    for chain in chains.iter_mut() {
        let k = chain.segments.len();
        if k == 1 {
            let seg = &chain.segments[0];
            if let Some(ys) = seg.by_left.get(key as usize) {
                let mut ys: Vec<Vid> = ys.iter().copied().collect();
                ys.sort_unstable();
                for y in ys {
                    if y != key && direct_support.get(&pack(key, y)).copied().unwrap_or(0) > 0 {
                        if let Some(v) = real_from(real_ids, y) {
                            target.add_direct(id, RealId(v), patch);
                        }
                    }
                }
            }
            if let Some(xs) = seg.by_right.get(key as usize) {
                let mut xs: Vec<Vid> = xs.iter().copied().collect();
                xs.sort_unstable();
                for x in xs {
                    if x != key && direct_support.get(&pack(x, key)).copied().unwrap_or(0) > 0 {
                        if let Some(u) = real_from(real_ids, x) {
                            target.add_direct(RealId(u), id, patch);
                        }
                    }
                }
            }
            continue;
        }
        let ChainState {
            segments,
            boundary_index,
            boundary_keys,
            boundary_virts,
        } = chain;
        if let Some(avals) = segments[0].by_left.get(key as usize) {
            let mut avals: Vec<Vid> = avals.iter().copied().collect();
            avals.sort_unstable();
            for a in avals {
                let v = ensure_virt(
                    boundary_index,
                    boundary_keys,
                    boundary_virts,
                    0,
                    a,
                    target,
                    patch,
                );
                target.add_membership(id, v, patch);
            }
        }
        if let Some(avals) = segments[k - 1].by_right.get(key as usize) {
            let mut avals: Vec<Vid> = avals.iter().copied().collect();
            avals.sort_unstable();
            for a in avals {
                let v = ensure_virt(
                    boundary_index,
                    boundary_keys,
                    boundary_virts,
                    k - 2,
                    a,
                    target,
                    patch,
                );
                target.add_virt_to_real(v, id, patch);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The top-level delta application
// ---------------------------------------------------------------------------

/// Derive the property values a node-view row yields (NULLs set nothing,
/// matching the extractor).
fn derive_props(view: &ViewState, row: &[Value]) -> Vec<(String, PropValue)> {
    let mut out = Vec::with_capacity(view.prop_cols.len());
    for (name, col) in &view.prop_cols {
        let pv = match &row[*col] {
            Value::Int(v) => PropValue::Int(*v),
            Value::Str(s) => PropValue::Text(s.to_string()),
            Value::Null => continue,
        };
        out.push((name.clone(), pv));
    }
    out
}

/// Apply one table delta to the maintained state and the graph. This is
/// the engine behind [`crate::GraphHandle::apply_delta`]; initial
/// extraction replays whole tables through the same path.
///
/// `ids` and `props` arrive behind `Arc`s (the handle shares them with
/// published reader clones): the engine reads them freely and
/// [`std::sync::Arc::make_mut`]s only at actual mutation points, so a
/// delta that touches no node view never pays an id-map or property copy
/// no matter how many snapshots share them.
pub(crate) fn apply_delta_state(
    state: &mut IncrementalState,
    graph: &mut AnyGraph,
    ids: &mut std::sync::Arc<IdMap<Value>>,
    props: &mut std::sync::Arc<Properties>,
    delta: &Delta,
) -> Result<GraphPatch, Error> {
    let IncrementalState {
        threads,
        views,
        chains,
        node_entries,
        direct_support,
        dict,
        real_ids,
        shadow,
    } = state;
    let threads = *threads;
    let mut patch = GraphPatch::default();
    let mut target = match shadow.as_mut() {
        Some(s) => Target::Generic {
            shadow: s,
            rep: graph,
        },
        None => match graph {
            AnyGraph::CDup(g) => Target::Mirror(g),
            other => {
                return Err(PatchError::Inconsistent(format!(
                    "incremental state lost its shadow while the handle holds {} \
                     (graph_mut was used to swap representations?)",
                    other.kind()
                ))
                .into())
            }
        },
    };

    // Phase 1: push the delta through every segment of every chain and
    // patch the edge structure.
    for chain in chains.iter_mut() {
        let k = chain.segments.len();
        for j in 0..k {
            let (added, removed) = chain.segments[j].transitions(delta, threads, dict)?;
            if added.is_empty() && removed.is_empty() {
                continue;
            }
            materialize_segment(
                chain,
                j,
                &added,
                &removed,
                direct_support,
                real_ids,
                dict,
                &mut target,
                &mut patch,
            )?;
        }
    }

    // Phase 2: node views — update per-key support and property rows
    // (sequential, so key interning is thread-count independent).
    let mut touched: Vec<Vid> = Vec::new();
    let mut prior: FxHashMap<Vid, i64> = FxHashMap::default();
    for (vi, view) in views.iter().enumerate() {
        if view.relation != delta.table() {
            continue;
        }
        for row in delta.rows() {
            if !view.pred.eval(&row.values) {
                continue;
            }
            let key = &row.values[view.id_col];
            if key.is_null() {
                continue;
            }
            let kvid = dict.intern(key);
            let entry = node_entries.entry(kvid).or_default();
            if let std::collections::hash_map::Entry::Vacant(v) = prior.entry(kvid) {
                v.insert(entry.support);
                touched.push(kvid);
            }
            let derived = derive_props(view, &row.values);
            match row.op {
                DeltaOp::Insert => {
                    entry.support += 1;
                    entry.prop_rows.push((vi, derived));
                }
                DeltaOp::Delete => {
                    let pos = entry
                        .prop_rows
                        .iter()
                        .position(|(v, p)| *v == vi && *p == derived)
                        .ok_or_else(|| {
                            PatchError::Inconsistent(format!(
                                "delta deletes node row for key {key} that was never inserted"
                            ))
                        })?;
                    entry.prop_rows.remove(pos);
                    entry.support -= 1;
                }
            }
        }
    }

    // Phase 3: materialize node transitions and re-derive properties. Only
    // this phase writes the (possibly shared) id map and property store —
    // `Arc::make_mut` unshares each at most once per delta, and only when
    // a node view actually changed.
    for kvid in touched {
        let before = prior[&kvid];
        let now = node_entries.get(&kvid).map_or(0, |e| e.support);
        let key = dict.resolve(kvid).expect("node key is interned").clone();
        if before == 0 && now > 0 {
            if let Some(id) = ids.get(&key) {
                target.revive(RealId(id), &mut patch);
            } else {
                let id = std::sync::Arc::make_mut(ids).intern(key.clone());
                let slot = target.add_real_slot(&mut patch);
                debug_assert_eq!(slot.0, id, "id map and graph slots diverged");
                std::sync::Arc::make_mut(props).grow(ids.len());
                // Keep the flat side-table in step with the id map — the
                // only place a new real id is ever allocated.
                if real_ids.len() <= kvid as usize {
                    real_ids.resize(kvid as usize + 1, u32::MAX);
                }
                real_ids[kvid as usize] = id;
                materialize_node_edges(
                    chains,
                    kvid,
                    RealId(id),
                    direct_support,
                    real_ids,
                    &mut target,
                    &mut patch,
                );
            }
        } else if before > 0 && now == 0 {
            let id = ids.get(&key).expect("supported key is interned");
            target.kill(RealId(id), &mut patch);
        }
        if now > 0 {
            let id = ids.get(&key).expect("supported key is interned");
            let p = std::sync::Arc::make_mut(props);
            p.grow(ids.len());
            p.clear_vertex(RealId(id));
            let entry = &node_entries[&kvid];
            let mut rows: Vec<&(usize, Vec<(String, PropValue)>)> =
                entry.prop_rows.iter().collect();
            rows.sort_by_key(|(vi, _)| *vi);
            for (_, propvals) in rows {
                for (name, v) in propvals {
                    p.set(RealId(id), name, v.clone());
                }
            }
        } else {
            node_entries.remove(&kvid);
        }
    }
    Ok(patch)
}

// ---------------------------------------------------------------------------
// Snapshot codec
// ---------------------------------------------------------------------------
//
// The serving layer persists incremental handles so a recovered process can
// keep applying deltas exactly where the crashed one stopped. The whole
// maintenance state — atom multisets, segment supports, boundary interning,
// node entries, the condensed shadow — is encoded verbatim with the
// workspace codec conventions; the redundant reverse indexes (`by_out`,
// `by_left`, `by_right`, the shadow's in-indexes) are rebuilt on decode
// instead of stored.

use graphgen_common::codec::{self, CodecError, Reader};
use graphgen_graph::snapshot as graph_snapshot;

/// Read one interned id and check it resolves against the decoded engine
/// dictionary — every id stored in the state must name a live slot.
fn read_vid(r: &mut Reader<'_>, dict: &Interner) -> Result<Vid, CodecError> {
    let at = r.pos();
    let v = r.u32()?;
    if dict.resolve(v).is_none() {
        return Err(CodecError::invalid(at, "id not in engine dictionary"));
    }
    Ok(v)
}

fn put_vid_counts(out: &mut Vec<u8>, map: &FxHashMap<Vid, i64>) {
    let mut keys: Vec<Vid> = map.keys().copied().collect();
    keys.sort_unstable();
    codec::put_len(out, keys.len());
    for k in keys {
        codec::put_u32(out, k);
        codec::put_i64(out, map[&k]);
    }
}

fn read_vid_counts(r: &mut Reader<'_>, dict: &Interner) -> Result<FxHashMap<Vid, i64>, CodecError> {
    let n = r.len_of(12)?;
    let mut map = FxHashMap::default();
    for _ in 0..n {
        let k = read_vid(r, dict)?;
        let v = r.i64()?;
        map.insert(k, v);
    }
    Ok(map)
}

/// Encode a flat id-indexed bag: only the non-empty slots are written, in
/// ascending id order (deterministic without sorting hash keys).
fn put_vid_bag(out: &mut Vec<u8>, bag: &VidBag) {
    let n = bag.iter().filter(|inner| !inner.is_empty()).count();
    codec::put_len(out, n);
    for (vid, inner) in bag.iter().enumerate() {
        if inner.is_empty() {
            continue;
        }
        codec::put_u32(out, vid as Vid);
        put_vid_counts(out, inner);
    }
}

fn read_vid_bag(r: &mut Reader<'_>, dict: &Interner) -> Result<VidBag, CodecError> {
    let n = r.len()?;
    let mut bag = VidBag::new();
    for _ in 0..n {
        let k = read_vid(r, dict)?;
        let counts = read_vid_counts(r, dict)?;
        if bag.len() <= k as usize {
            bag.resize_with(k as usize + 1, FxHashMap::default);
        }
        bag[k as usize] = counts;
    }
    Ok(bag)
}

fn put_packed_counts(out: &mut Vec<u8>, map: &FxHashMap<u64, i64>) {
    let mut keys: Vec<u64> = map.keys().copied().collect();
    keys.sort_unstable();
    codec::put_len(out, keys.len());
    for k in keys {
        codec::put_u64(out, k);
        codec::put_i64(out, map[&k]);
    }
}

fn read_packed_counts(
    r: &mut Reader<'_>,
    dict: &Interner,
) -> Result<FxHashMap<u64, i64>, CodecError> {
    let n = r.len_of(16)?;
    let mut map = FxHashMap::default();
    for _ in 0..n {
        let at = r.pos();
        let k = r.u64()?;
        let (l, rr) = unpack(k);
        if dict.resolve(l).is_none() || dict.resolve(rr).is_none() {
            return Err(CodecError::invalid(
                at,
                "packed id pair not in engine dictionary",
            ));
        }
        let v = r.i64()?;
        map.insert(k, v);
    }
    Ok(map)
}

fn put_idmap(out: &mut Vec<u8>, ids: &IdMap<Value>) {
    codec::put_len(out, ids.len());
    for (_, key) in ids.iter() {
        key.encode_into(out);
    }
}

fn read_idmap(r: &mut Reader<'_>) -> Result<IdMap<Value>, CodecError> {
    let n = r.len()?;
    let mut ids = IdMap::with_capacity(n);
    for i in 0..n {
        let at = r.pos();
        let key = Value::decode(r)?;
        if ids.intern(key) != i as u32 {
            return Err(CodecError::invalid(at, "duplicate key in id map"));
        }
    }
    Ok(ids)
}

/// Encode an `IdMap<Value>` (keys in dense-id order). Shared with the
/// handle snapshot in [`crate::serialize`].
pub(crate) fn encode_idmap(ids: &IdMap<Value>, out: &mut Vec<u8>) {
    put_idmap(out, ids);
}

/// Decode an `IdMap<Value>` (inverse of [`encode_idmap`]).
pub(crate) fn decode_idmap(r: &mut Reader<'_>) -> Result<IdMap<Value>, CodecError> {
    read_idmap(r)
}

impl AtomState {
    fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_str(out, &self.table);
        self.pred.encode_into(out);
        codec::put_len(out, self.in_col);
        codec::put_len(out, self.out_col);
        put_vid_bag(out, &self.by_in);
        // `by_out` is the transpose of `by_in`: rebuilt on decode.
    }

    fn decode(r: &mut Reader<'_>, dict: &Interner) -> Result<Self, CodecError> {
        let table = r.str()?.to_string();
        let pred = Predicate::decode(r)?;
        let in_col = r.scalar()?;
        let out_col = r.scalar()?;
        let by_in = read_vid_bag(r, dict)?;
        let mut by_out = VidBag::new();
        for (in_v, outs) in by_in.iter().enumerate() {
            for (&out_v, &m) in outs {
                if by_out.len() <= out_v as usize {
                    by_out.resize_with(out_v as usize + 1, FxHashMap::default);
                }
                *by_out[out_v as usize].entry(in_v as Vid).or_insert(0) += m;
            }
        }
        Ok(Self {
            table,
            pred,
            in_col,
            out_col,
            by_in,
            by_out,
        })
    }
}

impl SegmentState {
    fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_len(out, self.atoms.len());
        for atom in &self.atoms {
            atom.encode_into(out);
        }
        put_packed_counts(out, &self.support);
        // `by_left` / `by_right` index the support keys: rebuilt on decode.
    }

    fn decode(r: &mut Reader<'_>, dict: &Interner) -> Result<Self, CodecError> {
        let n = r.len()?;
        let mut atoms = Vec::with_capacity(n);
        for _ in 0..n {
            atoms.push(AtomState::decode(r, dict)?);
        }
        let support = read_packed_counts(r, dict)?;
        let mut by_left: Vec<FxHashSet<Vid>> = Vec::new();
        let mut by_right: Vec<FxHashSet<Vid>> = Vec::new();
        for key in support.keys() {
            let (x, y) = unpack(*key);
            flat_insert(&mut by_left, x, y);
            flat_insert(&mut by_right, y, x);
        }
        Ok(Self {
            atoms,
            support,
            by_left,
            by_right,
        })
    }
}

impl IncrementalState {
    /// Encode the whole maintenance state (see the module-level codec
    /// notes). Deterministic: hash-map content is emitted in sorted order.
    /// The shadow's adjacency chunks intern into `enc` — chunks shared
    /// with the handle's own graph are written once per snapshot.
    pub(crate) fn encode_into(&self, enc: &mut graph_snapshot::ChunkEncoder, out: &mut Vec<u8>) {
        // The engine dictionary goes first: everything after it stores
        // interned ids, and a recovered state must continue allocating
        // ids exactly where the encoding process stopped.
        self.dict.encode_into(out);
        codec::put_len(out, self.threads);
        codec::put_len(out, self.views.len());
        for view in &self.views {
            codec::put_str(out, &view.relation);
            codec::put_len(out, view.id_col);
            codec::put_len(out, view.prop_cols.len());
            for (name, col) in &view.prop_cols {
                codec::put_str(out, name);
                codec::put_len(out, *col);
            }
            view.pred.encode_into(out);
        }
        codec::put_len(out, self.chains.len());
        for chain in &self.chains {
            codec::put_len(out, chain.segments.len());
            for seg in &chain.segments {
                seg.encode_into(out);
            }
            codec::put_len(out, chain.boundary_keys.len());
            for (keys, virts) in chain.boundary_keys.iter().zip(&chain.boundary_virts) {
                // Boundary interning order, persisted explicitly (the flat
                // id → local-index table is rebuilt on decode).
                codec::put_len(out, keys.len());
                for k in keys {
                    codec::put_u32(out, *k);
                }
                codec::put_len(out, virts.len());
                for v in virts {
                    codec::put_u32(out, v.0);
                }
            }
        }
        let mut node_keys: Vec<Vid> = self.node_entries.keys().copied().collect();
        node_keys.sort_unstable();
        codec::put_len(out, node_keys.len());
        for key in node_keys {
            let entry = &self.node_entries[&key];
            codec::put_u32(out, key);
            codec::put_i64(out, entry.support);
            codec::put_len(out, entry.prop_rows.len());
            for (view_idx, props) in &entry.prop_rows {
                codec::put_len(out, *view_idx);
                codec::put_len(out, props.len());
                for (name, value) in props {
                    codec::put_str(out, name);
                    graph_snapshot::encode_prop_value(value, out);
                }
            }
        }
        put_packed_counts(out, &self.direct_support);
        match &self.shadow {
            None => codec::put_u8(out, 0),
            Some(shadow) => {
                codec::put_u8(out, 1);
                graph_snapshot::encode_condensed(&shadow.g, enc, out);
            }
        }
    }

    /// Decode a maintenance state (inverse of
    /// [`IncrementalState::encode_into`]); reverse indexes are rebuilt.
    pub(crate) fn decode(
        r: &mut Reader<'_>,
        dec: &graph_snapshot::ChunkDecoder,
    ) -> Result<Self, CodecError> {
        let dict = Interner::decode(r)?;
        // `threads` is a plain scalar, not a length — `Reader::len`'s
        // fits-in-remaining-input plausibility check would spuriously
        // reject a small state encoded on a many-core machine.
        let threads = r.scalar()?.max(1);
        let n_views = r.len()?;
        let mut views = Vec::with_capacity(n_views);
        for _ in 0..n_views {
            let relation = r.str()?.to_string();
            let id_col = r.scalar()?;
            let n_props = r.len()?;
            let mut prop_cols = Vec::with_capacity(n_props);
            for _ in 0..n_props {
                let name = r.str()?.to_string();
                let col = r.scalar()?;
                prop_cols.push((name, col));
            }
            let pred = Predicate::decode(r)?;
            views.push(ViewState {
                relation,
                id_col,
                prop_cols,
                pred,
            });
        }
        let n_chains = r.len()?;
        let mut chains = Vec::with_capacity(n_chains);
        for _ in 0..n_chains {
            let n_segs = r.len()?;
            let mut segments = Vec::with_capacity(n_segs);
            for _ in 0..n_segs {
                segments.push(SegmentState::decode(r, &dict)?);
            }
            let n_bounds = r.len()?;
            let at = r.pos();
            if n_bounds != n_segs.saturating_sub(1) {
                return Err(CodecError::invalid(at, "boundary count mismatch"));
            }
            let mut boundary_index = Vec::with_capacity(n_bounds);
            let mut boundary_keys = Vec::with_capacity(n_bounds);
            let mut boundary_virts = Vec::with_capacity(n_bounds);
            for _ in 0..n_bounds {
                let n_keys = r.len_of(4)?;
                let mut keys = Vec::with_capacity(n_keys);
                let mut index: Vec<u32> = Vec::new();
                for i in 0..n_keys {
                    let at = r.pos();
                    let k = read_vid(r, &dict)?;
                    if index.len() <= k as usize {
                        index.resize(k as usize + 1, u32::MAX);
                    }
                    if index[k as usize] != u32::MAX {
                        return Err(CodecError::invalid(at, "duplicate boundary key"));
                    }
                    index[k as usize] = i as u32;
                    keys.push(k);
                }
                let n_virts = r.len_of(4)?;
                let at = r.pos();
                if n_virts != keys.len() {
                    return Err(CodecError::invalid(at, "boundary virtual count mismatch"));
                }
                let mut virts = Vec::with_capacity(n_virts);
                for _ in 0..n_virts {
                    virts.push(VirtId(r.u32()?));
                }
                boundary_index.push(index);
                boundary_keys.push(keys);
                boundary_virts.push(virts);
            }
            chains.push(ChainState {
                segments,
                boundary_index,
                boundary_keys,
                boundary_virts,
            });
        }
        let n_nodes = r.len()?;
        let mut node_entries = FxHashMap::default();
        for _ in 0..n_nodes {
            let key = read_vid(r, &dict)?;
            let support = r.i64()?;
            let n_rows = r.len()?;
            let mut prop_rows = Vec::with_capacity(n_rows);
            for _ in 0..n_rows {
                let at = r.pos();
                let view_idx = r.scalar()?;
                if view_idx >= views.len() {
                    return Err(CodecError::invalid(
                        at,
                        "node entry references unknown view",
                    ));
                }
                let n_props = r.len()?;
                let mut props = Vec::with_capacity(n_props);
                for _ in 0..n_props {
                    let name = r.str()?.to_string();
                    props.push((name, graph_snapshot::decode_prop_value(r)?));
                }
                prop_rows.push((view_idx, props));
            }
            node_entries.insert(key, NodeEntry { support, prop_rows });
        }
        let direct_support = read_packed_counts(r, &dict)?;
        let at = r.pos();
        let shadow = match r.u8()? {
            0 => None,
            1 => Some(ShadowCore::from_graph(graph_snapshot::decode_condensed(
                r, dec,
            )?)),
            tag => return Err(CodecError::invalid(at, format!("bad shadow tag {tag}"))),
        };
        Ok(Self {
            threads,
            views,
            chains,
            node_entries,
            direct_support,
            dict,
            // Not persisted: the handle assembly rebuilds this from the
            // decoded id map (`rebuild_real_ids`).
            real_ids: Vec::new(),
            shadow,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::extract::{GraphGen, GraphGenConfig};
    use crate::handle::{ConvertOptions, GraphHandle};
    use graphgen_graph::{GraphRep, RepKind};
    use graphgen_reldb::{Column, Database, Delta, DeltaOp, Schema, Table, Value};

    /// The Fig. 1 toy DBLP instance.
    fn fig1_db() -> Database {
        let mut author = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
        for a in 1..=5 {
            author
                .push_row(vec![Value::int(a), Value::str(format!("a{a}"))])
                .unwrap();
        }
        let mut ap = Table::new(Schema::new(vec![Column::int("aid"), Column::int("pid")]));
        for (a, p) in [
            (1, 1),
            (2, 1),
            (4, 1),
            (1, 2),
            (4, 2),
            (3, 3),
            (4, 3),
            (5, 3),
        ] {
            ap.push_row(vec![Value::int(a), Value::int(p)]).unwrap();
        }
        let mut db = Database::new();
        db.register("Author", author).unwrap();
        db.register("AuthorPub", ap).unwrap();
        db
    }

    const Q1: &str = "Nodes(ID, Name) :- Author(ID, Name).\n\
                      Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).";

    fn cfg(incremental: bool, threads: usize) -> GraphGenConfig {
        GraphGenConfig::builder()
            .large_output_factor(0.0)
            .preprocess(false)
            .auto_expand_threshold(None)
            .threads(threads)
            .incremental(incremental)
            .build()
    }

    fn extract(db: &Database, incremental: bool) -> GraphHandle {
        GraphGen::with_config(db, cfg(incremental, 1))
            .extract(Q1)
            .unwrap()
    }

    fn assert_matches_reextraction(db: &Database, patched: &GraphHandle) {
        let fresh = extract(db, false);
        assert_eq!(
            String::from_utf8(patched.canonical_bytes()).unwrap(),
            String::from_utf8(fresh.canonical_bytes()).unwrap()
        );
    }

    #[test]
    fn incremental_extraction_matches_plain() {
        let db = fig1_db();
        let g = extract(&db, true);
        assert!(g.is_incremental());
        assert_matches_reextraction(&db, &g);
    }

    #[test]
    fn empty_delta_is_noop() {
        let mut db = fig1_db();
        let mut g = extract(&db, true);
        let before = g.canonical_bytes();
        // Deleting a never-inserted row mutates nothing and logs nothing.
        let delta = db
            .delete_rows("AuthorPub", &[vec![Value::int(42), Value::int(42)]])
            .unwrap();
        assert!(delta.is_empty());
        let patch = g.apply_delta(&delta).unwrap();
        assert!(patch.is_empty());
        assert_eq!(g.canonical_bytes(), before);
    }

    #[test]
    fn membership_inserts_patch_in_place() {
        let mut db = fig1_db();
        let mut g = extract(&db, true);
        // a2 joins publication 3: new co-author edges with a3, a4, a5.
        let delta = db
            .insert_rows("AuthorPub", vec![vec![Value::int(2), Value::int(3)]])
            .unwrap();
        let patch = g.apply_delta(&delta).unwrap();
        assert!(!patch.is_empty());
        assert!(g.neighbors_by_key(&Value::int(2)).unwrap().len() >= 4);
        assert_matches_reextraction(&db, &g);
    }

    #[test]
    fn membership_deletes_patch_in_place() {
        let mut db = fig1_db();
        let mut g = extract(&db, true);
        // a4 leaves publication 1; it still shares publication 2 with a1.
        let delta = db
            .delete_rows("AuthorPub", &[vec![Value::int(4), Value::int(1)]])
            .unwrap();
        g.apply_delta(&delta).unwrap();
        assert_matches_reextraction(&db, &g);
    }

    #[test]
    fn insert_and_delete_same_row_in_one_batch_cancel() {
        let mut db = fig1_db();
        let mut g = extract(&db, true);
        let before = g.canonical_bytes();
        let ins = db
            .insert_rows("AuthorPub", vec![vec![Value::int(2), Value::int(3)]])
            .unwrap();
        let del = db
            .delete_rows("AuthorPub", &[vec![Value::int(2), Value::int(3)]])
            .unwrap();
        let batch = ins.then(del).unwrap();
        assert_eq!(batch.len(), 2);
        g.apply_delta(&batch).unwrap();
        assert_eq!(g.canonical_bytes(), before);
        assert_matches_reextraction(&db, &g);
    }

    #[test]
    fn node_views_add_remove_revive() {
        let mut db = fig1_db();
        let mut g = extract(&db, true);
        // Remove author 4 (the hub): its edges disappear.
        let delta = db
            .delete_rows("Author", &[vec![Value::int(4), Value::str("a4")]])
            .unwrap();
        let patch = g.apply_delta(&delta).unwrap();
        assert_eq!(patch.nodes_removed, 1);
        assert!(
            g.vertex_of(&Value::int(4)).is_none()
                || !g.is_alive(g.vertex_of(&Value::int(4)).unwrap())
        );
        assert_matches_reextraction(&db, &g);
        // Revive author 4 under a new name: edges come back, property updates.
        let delta = db
            .insert_rows("Author", vec![vec![Value::int(4), Value::str("renamed")]])
            .unwrap();
        let patch = g.apply_delta(&delta).unwrap();
        assert_eq!(patch.nodes_revived, 1);
        assert_eq!(
            g.vertex_property(&Value::int(4), "Name")
                .and_then(|p| p.as_text()),
            Some("renamed")
        );
        assert_matches_reextraction(&db, &g);
        // A brand-new author with a membership inserted before the node:
        let d1 = db
            .insert_rows("AuthorPub", vec![vec![Value::int(9), Value::int(1)]])
            .unwrap();
        g.apply_delta(&d1).unwrap();
        assert_matches_reextraction(&db, &g);
        let d2 = db
            .insert_rows("Author", vec![vec![Value::int(9), Value::str("a9")]])
            .unwrap();
        let patch = g.apply_delta(&d2).unwrap();
        assert_eq!(patch.nodes_added, 1);
        assert!(g
            .neighbors_by_key(&Value::int(9))
            .unwrap()
            .contains(&&Value::int(1)));
        assert_matches_reextraction(&db, &g);
    }

    #[test]
    fn apply_delta_without_state_errors() {
        let db = fig1_db();
        let mut g = extract(&db, false);
        let delta = Delta::new("AuthorPub");
        let err = g.apply_delta(&delta).unwrap_err();
        assert!(matches!(
            err.as_patch(),
            Some(crate::error::PatchError::NotIncremental)
        ));
    }

    #[test]
    fn inconsistent_delta_reports() {
        let db = fig1_db();
        let mut g = extract(&db, true);
        // A hand-built delta deleting a row the table never held.
        let mut delta = Delta::new("AuthorPub");
        delta.push(vec![Value::int(42), Value::int(42)], DeltaOp::Delete);
        let err = g.apply_delta(&delta).unwrap_err();
        assert!(matches!(
            err.as_patch(),
            Some(crate::error::PatchError::Inconsistent(_))
        ));
    }

    #[test]
    fn patches_survive_conversion() {
        let mut db = fig1_db();
        let opts = ConvertOptions::default();
        for target in [
            RepKind::Exp,
            RepKind::Dedup1,
            RepKind::Dedup2,
            RepKind::Bitmap,
        ] {
            let mut g = extract(&db, true).convert(target, &opts).unwrap();
            assert!(g.is_incremental());
            let delta = db
                .insert_rows("AuthorPub", vec![vec![Value::int(2), Value::int(3)]])
                .unwrap();
            let patch = g.apply_delta(&delta).unwrap();
            assert!(patch.logical_edges_added > 0, "{target}");
            assert_matches_reextraction(&db, &g);
            // Undo for the next representation.
            let delta = db
                .delete_rows("AuthorPub", &[vec![Value::int(2), Value::int(3)]])
                .unwrap();
            g.apply_delta(&delta).unwrap();
            assert_matches_reextraction(&db, &g);
            // An incremental handle never loses its condensed core: even
            // EXP/DEDUP-2 handles convert onward.
            let back = g.convert(RepKind::CDup, &opts).unwrap();
            assert_eq!(back.canonical_bytes(), g.canonical_bytes());
        }
    }

    #[test]
    fn advise_consults_the_shadow_core() {
        use crate::handle::AdvisorPolicy;
        let db = fig1_db();
        let exp = extract(&db, true)
            .convert(RepKind::Exp, &ConvertOptions::default())
            .unwrap();
        // A plain EXP handle has no condensed core, so the chooser can only
        // keep EXP; an incremental EXP handle still knows the shape through
        // its shadow and advises like the C-DUP original.
        let strict = AdvisorPolicy {
            expand_threshold: 0.0,
            ..Default::default()
        };
        let advised = exp.advise(&strict);
        assert_ne!(advised, RepKind::Exp, "shadow-aware advice expected");
        let converted = exp
            .convert_to_advised(&strict, &ConvertOptions::default())
            .unwrap();
        assert_eq!(converted.kind(), advised);
        assert_eq!(converted.canonical_bytes(), exp.canonical_bytes());
    }

    #[test]
    fn thread_counts_are_byte_identical() {
        let mut db = fig1_db();
        let mut handles: Vec<GraphHandle> = [1usize, 2, 8]
            .iter()
            .map(|&t| {
                GraphGen::with_config(&db, cfg(true, t))
                    .extract(Q1)
                    .unwrap()
            })
            .collect();
        let delta = db
            .insert_rows(
                "AuthorPub",
                vec![
                    vec![Value::int(2), Value::int(3)],
                    vec![Value::int(5), Value::int(1)],
                ],
            )
            .unwrap();
        let bytes: Vec<Vec<u8>> = handles
            .iter_mut()
            .map(|g| {
                g.apply_delta(&delta).unwrap();
                g.canonical_bytes()
            })
            .collect();
        assert_eq!(bytes[0], bytes[1]);
        assert_eq!(bytes[0], bytes[2]);
        assert_matches_reextraction(&db, &handles[0]);
    }
}
