//! `graphgen-bench` — shared harness utilities for the experiment binaries.
//!
//! One binary per paper table/figure lives in `src/bin/`; Criterion
//! microbenchmarks live in `benches/`. This library holds the dataset
//! presets (scaled-down but shape-preserving stand-ins for the paper's
//! datasets — see EXPERIMENTS.md for the mapping) and the representation
//! builders shared by all of them.

pub mod alloc;
pub mod report;

/// Every binary linking this crate accounts allocations through
/// [`alloc::CountingAlloc`] so benches can report bytes allocated and peak
/// resident bytes per measured region.
#[global_allocator]
static GLOBAL: alloc::CountingAlloc = alloc::CountingAlloc;

use graphgen_common::VertexOrdering;
use graphgen_core::{AnyGraph, GraphGen, GraphGenConfig};
use graphgen_datagen::{
    dblp_like, imdb_like, synthetic_condensed, CondensedGenConfig, DblpConfig, ImdbConfig,
};
use graphgen_dedup::{bitmap1, bitmap2, try_dedup2_greedy, Dedup1Algorithm};
use graphgen_graph::{
    BitmapGraph, CondensedGraph, Dedup1Graph, Dedup2Graph, ExpandedGraph, GraphRep,
};
use std::time::{Duration, Instant};

/// Time a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Milliseconds with 3 decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Speedup of `t` relative to `base`, formatted as `N.NNx`.
pub fn speedup(base: Duration, t: Duration) -> String {
    format!("{:.2}x", base.as_secs_f64() / t.as_secs_f64().max(1e-9))
}

/// One measurement of [`measure_thread_scaling`].
pub struct ThreadScalingRow<T> {
    /// Thread count this row ran with.
    pub threads: usize,
    /// Wall time of the run.
    pub time: Duration,
    /// Bytes allocated / peak live during the run.
    pub alloc: alloc::AllocStats,
    /// Whatever the measured closure returned.
    pub output: T,
}

/// Run `f` once per thread count, measuring wall time and allocation, so
/// every bench bin shares one measurement protocol. Speedup of row `i` is
/// `rows[0].time` over `rows[i].time` (see [`speedup`]).
pub fn measure_thread_scaling<T>(
    counts: &[usize],
    mut f: impl FnMut(usize) -> T,
) -> Vec<ThreadScalingRow<T>> {
    counts
        .iter()
        .map(|&threads| {
            let ((output, time), alloc) = alloc::measure(|| time(|| f(threads)));
            ThreadScalingRow {
                threads,
                time,
                alloc,
                output,
            }
        })
        .collect()
}

/// The four small datasets of §6.1, as condensed graphs.
pub fn small_datasets() -> Vec<(&'static str, CondensedGraph)> {
    vec![
        (
            "DBLP",
            extract_cdup(
                &dblp_like(DblpConfig::default()),
                graphgen_datagen::relational::DBLP_COAUTHORS,
            ),
        ),
        (
            "IMDB",
            extract_cdup(
                &imdb_like(ImdbConfig::default()),
                graphgen_datagen::relational::IMDB_COACTORS,
            ),
        ),
        (
            "Synthetic_1",
            synthetic_condensed(CondensedGenConfig {
                n_real: 2_000,
                n_virtual: 4_000,
                mean_size: 7.0,
                sd_size: 3.0,
                seed: 101,
            }),
        ),
        (
            "Synthetic_2",
            synthetic_condensed(CondensedGenConfig {
                n_real: 4_000,
                n_virtual: 60,
                mean_size: 94.0,
                sd_size: 30.0,
                seed: 102,
            }),
        ),
    ]
}

/// Extract the C-DUP graph for a query, forcing the condensed path.
pub fn extract_cdup(db: &graphgen_reldb::Database, query: &str) -> CondensedGraph {
    let gg = GraphGen::with_config(
        db,
        // large_output_factor 0.0 forces virtual nodes.
        GraphGenConfig::builder()
            .large_output_factor(0.0)
            .preprocess(false)
            .auto_expand_threshold(None)
            .threads(1)
            .build(),
    );
    match gg.extract(query).expect("extraction failed").into_parts().0 {
        AnyGraph::CDup(g) => g,
        _ => unreachable!("auto-expansion disabled"),
    }
}

/// All representations built from one condensed graph.
pub struct RepSet {
    /// Dataset label.
    pub name: String,
    /// The raw condensed graph.
    pub cdup: CondensedGraph,
    /// Fully expanded.
    pub exp: ExpandedGraph,
    /// DEDUP-1 via Greedy Virtual-Nodes-First (the paper's Fig. 10 choice).
    pub dedup1: Dedup1Graph,
    /// DEDUP-2 (symmetric single-layer sources only).
    pub dedup2: Option<Dedup2Graph>,
    /// BITMAP-1.
    pub bitmap1: BitmapGraph,
    /// BITMAP-2.
    pub bitmap2: BitmapGraph,
}

impl RepSet {
    /// Build every representation from a condensed graph.
    pub fn build(name: &str, cdup: CondensedGraph) -> Self {
        let exp = ExpandedGraph::from_rep(&cdup);
        let dedup1 = Dedup1Algorithm::GreedyVnf.run(&cdup, VertexOrdering::Random, 7);
        let dedup2 = try_dedup2_greedy(&cdup, VertexOrdering::Descending, 7).ok();
        let b1 = bitmap1(cdup.clone());
        let (b2, _) = bitmap2(cdup.clone(), 1);
        Self {
            name: name.to_string(),
            cdup,
            exp,
            dedup1,
            dedup2,
            bitmap1: b1,
            bitmap2: b2,
        }
    }

    /// Iterate `(label, graph)` pairs over every built representation.
    pub fn reps(&self) -> Vec<(&'static str, &dyn GraphRep)> {
        let mut out: Vec<(&'static str, &dyn GraphRep)> = vec![
            ("EXP", &self.exp),
            ("C-DUP", &self.cdup),
            ("DEDUP-1", &self.dedup1),
            ("BITMAP-1", &self.bitmap1),
            ("BITMAP-2", &self.bitmap2),
        ];
        if let Some(d2) = &self.dedup2 {
            out.insert(3, ("DEDUP-2", d2));
        }
        out
    }
}

/// Print a row of fixed-width columns.
pub fn row(cols: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cols.iter().zip(widths) {
        line.push_str(&format!("{c:>w$}  ", w = w));
    }
    println!("{}", line.trim_end());
}

/// Simple CLI flag check.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repset_builds_for_synthetic() {
        let g = synthetic_condensed(CondensedGenConfig {
            n_real: 120,
            n_virtual: 30,
            mean_size: 5.0,
            sd_size: 2.0,
            seed: 5,
        });
        let truth = graphgen_graph::expand_to_edge_list(&g);
        let set = RepSet::build("t", g);
        for (label, rep) in set.reps() {
            assert_eq!(
                graphgen_graph::expand_to_edge_list(rep),
                truth,
                "representation {label} diverges"
            );
        }
    }

    #[test]
    fn extract_cdup_matches_datagen_query() {
        let db = dblp_like(DblpConfig {
            authors: 60,
            publications: 90,
            avg_authors_per_pub: 2.0,
            seed: 3,
        });
        let g = extract_cdup(&db, graphgen_datagen::relational::DBLP_COAUTHORS);
        assert!(g.num_virtual() > 0);
    }
}
