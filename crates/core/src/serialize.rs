//! Graph serialization (§3.1's fourth consumption path): write the
//! extracted graph to disk "in its expanded representation, in a
//! standardized format, so that it can be further analyzed using any
//! specialized graph processing framework" (NetworkX-style edge lists),
//! plus a JSON document with nodes, properties, and edges for tools that
//! want both.
//!
//! # Binary snapshots
//!
//! [`encode_snapshot`] / [`decode_snapshot`] are the third format: a
//! **verbatim binary image of a whole [`GraphHandle`]** — whichever of the
//! five representations it holds, the id ↔ key mapping, the vertex
//! properties, and (for incremental handles) the complete delta-maintenance
//! state including the condensed shadow. The serving layer
//! (`graphgen-serve`) persists and recovers graphs through it.
//!
//! Layout (all integers little-endian, variable data length-prefixed — see
//! `graphgen_common::codec`):
//!
//! ```text
//! magic  8 bytes  b"GGSNAP3\0"   (embeds the format version)
//! chunks …        adjacency chunk table (graphgen_graph::snapshot):
//!                 chunk capacity, count, then each distinct chunk once —
//!                 chunks shared between sections (or byte-identical) are
//!                 deduplicated and rebuilt shared on decode
//! rep    u8       0=C-DUP 1=EXP 2=DEDUP-1 3=DEDUP-2 4=BITMAP
//! graph  …        representation payload (condensed adjacency stored as
//!                 chunk references into the table)
//! ids    …        node keys in dense-id order
//! props  …        property columns (sorted by name)
//! incr   u8 + …   0 = plain handle; 1 = incremental maintenance state:
//!                 the engine dictionary (dense-id interner) first, then
//!                 id-keyed atom bags / supports / boundary interning (the
//!                 condensed shadow also references the chunk table)
//! ```
//!
//! Format 3 prepends the engine dictionary to the incremental section and
//! stores all maintenance state keyed by dense interned ids instead of
//! owned values. Format 2 (`GGSNAP2\0`, value-keyed maintenance state) and
//! format 1 (`GGSNAP1\0`, flat adjacency lists) are **not** readable;
//! their files fail with a clean magic-mismatch error.
//!
//! The extraction [`report`](crate::ExtractionReport) is diagnostics, not
//! state, and is **not** persisted: a decoded handle carries a default
//! report. Everything observable through the graph API — canonical bytes,
//! conversions, and (for incremental handles) `apply_delta` behavior — is
//! restored exactly.

use crate::anygraph::AnyGraph;
use crate::error::Error;
use crate::handle::GraphHandle;
use crate::incremental::{self, IncrementalState};
use graphgen_common::codec::{self, CodecError, Reader};
use graphgen_graph::snapshot as graph_snapshot;
use graphgen_graph::{GraphRep, PropValue};
use graphgen_reldb::Value;
use std::io::{self, Write};

/// Write the expanded edge list: one `src<TAB>dst` pair per line, using the
/// original node keys.
pub fn write_edge_list<W: Write>(g: &GraphHandle, out: &mut W) -> io::Result<()> {
    for u in g.vertices() {
        let uk = g.key_of(u);
        let mut result = Ok(());
        g.for_each_neighbor(u, &mut |v| {
            if result.is_ok() {
                result = writeln!(out, "{}\t{}", plain(uk), plain(g.key_of(v)));
            }
        });
        result?;
    }
    Ok(())
}

/// Write a JSON document: `{"nodes": [...], "edges": [[src, dst], ...]}`.
/// Hand-rolled emitter (the structure is fixed and tiny) with proper string
/// escaping.
pub fn write_json<W: Write>(g: &GraphHandle, out: &mut W) -> io::Result<()> {
    write!(out, "{{\"nodes\":[")?;
    let mut first = true;
    for u in g.vertices() {
        if !first {
            write!(out, ",")?;
        }
        first = false;
        write!(out, "{{\"id\":{}", json_value(g.key_of(u)))?;
        let mut names: Vec<&str> = g.properties().names().collect();
        names.sort_unstable();
        for name in names {
            if let Some(p) = g.properties().get(u, name) {
                write!(out, ",{}:{}", json_str(name), json_prop(p))?;
            }
        }
        write!(out, "}}")?;
    }
    write!(out, "],\"edges\":[")?;
    let mut first = true;
    for u in g.vertices() {
        let mut result = Ok(());
        g.for_each_neighbor(u, &mut |v| {
            if result.is_err() {
                return;
            }
            let sep = if first { "" } else { "," };
            first = false;
            result = write!(
                out,
                "{sep}[{},{}]",
                json_value(g.key_of(u)),
                json_value(g.key_of(v))
            );
        });
        result?;
    }
    write!(out, "]}}")
}

fn plain(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Str(s) => s.to_string(),
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_value(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Str(s) => json_str(s),
    }
}

fn json_prop(p: &PropValue) -> String {
    match p {
        PropValue::Int(v) => v.to_string(),
        PropValue::Float(v) => format!("{v}"),
        PropValue::Text(s) => json_str(s),
    }
}

/// Magic prefix of the binary handle snapshot format; the trailing digit is
/// the format version (3 = dense-id interned maintenance state; 2 =
/// chunked, deduplicated adjacency — older-format files fail with a clean
/// magic mismatch).
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"GGSNAP3\0";

/// Encode a whole [`GraphHandle`] as a self-contained binary snapshot (see
/// the module docs for the layout). Deterministic: equal handles produce
/// equal bytes.
pub fn encode_snapshot(g: &GraphHandle) -> Vec<u8> {
    // Chunk-bearing sections encode into a body buffer while interning
    // their chunks; the deduplicated chunk table is then emitted *before*
    // the body, so decode can resolve references in one pass.
    let mut enc = graph_snapshot::ChunkEncoder::new();
    let mut body = Vec::new();
    match g.graph() {
        AnyGraph::CDup(inner) => {
            codec::put_u8(&mut body, 0);
            graph_snapshot::encode_condensed(inner, &mut enc, &mut body);
        }
        AnyGraph::Exp(inner) => {
            codec::put_u8(&mut body, 1);
            graph_snapshot::encode_expanded(inner, &mut body);
        }
        AnyGraph::Dedup1(inner) => {
            codec::put_u8(&mut body, 2);
            graph_snapshot::encode_dedup1(inner, &mut enc, &mut body);
        }
        AnyGraph::Dedup2(inner) => {
            codec::put_u8(&mut body, 3);
            graph_snapshot::encode_dedup2(inner, &mut body);
        }
        AnyGraph::Bitmap(inner) => {
            codec::put_u8(&mut body, 4);
            graph_snapshot::encode_bitmap(inner, &mut enc, &mut body);
        }
    }
    incremental::encode_idmap(g.ids(), &mut body);
    graph_snapshot::encode_properties(g.properties(), &mut body);
    match g.incremental_state() {
        None => codec::put_u8(&mut body, 0),
        Some(state) => {
            codec::put_u8(&mut body, 1);
            state.encode_into(&mut enc, &mut body);
        }
    }
    let mut out = Vec::with_capacity(body.len() + 64);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    enc.finish_into(&mut out);
    out.extend_from_slice(&body);
    out
}

/// Decode a binary snapshot produced by [`encode_snapshot`]. Rejects bad
/// magic (including the retired `GGSNAP1` format), truncation, trailing
/// bytes, and structurally inconsistent sections with
/// [`crate::ErrorKind::Snapshot`].
pub fn decode_snapshot(bytes: &[u8]) -> Result<GraphHandle, Error> {
    let mut r = Reader::new(bytes);
    r.expect_magic(&SNAPSHOT_MAGIC)?;
    let dec = graph_snapshot::ChunkDecoder::decode(&mut r)?;
    let at = r.pos();
    let graph = match r.u8()? {
        0 => AnyGraph::CDup(graph_snapshot::decode_condensed(&mut r, &dec)?),
        1 => AnyGraph::Exp(graph_snapshot::decode_expanded(&mut r)?),
        2 => AnyGraph::Dedup1(graph_snapshot::decode_dedup1(&mut r, &dec)?),
        3 => AnyGraph::Dedup2(graph_snapshot::decode_dedup2(&mut r)?),
        4 => AnyGraph::Bitmap(graph_snapshot::decode_bitmap(&mut r, &dec)?),
        tag => return Err(CodecError::invalid(at, format!("bad representation tag {tag}")).into()),
    };
    let ids = incremental::decode_idmap(&mut r)?;
    let at = r.pos();
    // Cross-section consistency: each section is individually validated,
    // but a corrupt snapshot could still pair a graph of N slots with a
    // shorter id map (or property store), which would panic later in
    // `key_of`/`canonical_bytes` instead of failing recovery cleanly.
    if ids.len() != graph.num_real_slots() {
        return Err(CodecError::invalid(
            at,
            format!(
                "id map covers {} keys but the graph has {} real slots",
                ids.len(),
                graph.num_real_slots()
            ),
        )
        .into());
    }
    let properties = graph_snapshot::decode_properties(&mut r)?;
    let at = r.pos();
    if properties.len() > ids.len() {
        return Err(CodecError::invalid(
            at,
            format!(
                "property store covers {} slots but only {} ids exist",
                properties.len(),
                ids.len()
            ),
        )
        .into());
    }
    let at = r.pos();
    let state = match r.u8()? {
        0 => None,
        1 => Some(IncrementalState::decode(&mut r, &dec)?),
        tag => return Err(CodecError::invalid(at, format!("bad incremental tag {tag}")).into()),
    };
    r.expect_end()?;
    Ok(GraphHandle::from_snapshot_parts(
        graph, ids, properties, state,
    ))
}

/// A canonical, key-space byte serialization of a handle's logical graph:
/// a `nodes` section (sorted by key, each with its properties sorted by
/// name) followed by an `edges` section (expanded logical edges as sorted
/// key pairs). The output depends only on the logical graph — not on the
/// representation, dense-id assignment, virtual-node numbering, or thread
/// count — so it is the equality the incremental-maintenance oracle
/// asserts: patched handle bytes == from-scratch re-extraction bytes.
pub fn canonical_bytes(g: &GraphHandle) -> Vec<u8> {
    let mut nodes: Vec<(&Value, graphgen_graph::RealId)> =
        g.vertices().map(|u| (g.key_of(u), u)).collect();
    nodes.sort_by(|a, b| a.0.cmp(b.0));
    let mut names: Vec<&str> = g.properties().names().collect();
    names.sort_unstable();
    let mut out = Vec::new();
    out.extend_from_slice(b"nodes\n");
    for (key, u) in &nodes {
        out.extend_from_slice(canon_value(key).as_bytes());
        for name in &names {
            if let Some(p) = g.properties().get(*u, name) {
                out.extend_from_slice(format!("\t{name}={}", canon_prop(p)).as_bytes());
            }
        }
        out.push(b'\n');
    }
    out.extend_from_slice(b"edges\n");
    let mut edges: Vec<(&Value, &Value)> = Vec::new();
    for u in g.vertices() {
        let uk = g.key_of(u);
        g.for_each_neighbor(u, &mut |v| edges.push((uk, g.key_of(v))));
    }
    edges.sort();
    edges.dedup();
    for (a, b) in edges {
        out.extend_from_slice(format!("{}\t{}\n", canon_value(a), canon_value(b)).as_bytes());
    }
    out
}

/// Unambiguous key rendering: string keys are escaped (`{:?}`) so keys
/// containing tabs/newlines cannot collide with the separators or with
/// differently-structured lines.
fn canon_value(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Str(s) => format!("{s:?}"),
    }
}

fn canon_prop(p: &PropValue) -> String {
    match p {
        PropValue::Int(v) => v.to_string(),
        PropValue::Float(v) => format!("{v}"),
        PropValue::Text(s) => format!("{s:?}"),
    }
}

/// Expanded degree sequence keyed by original node key — a convenient
/// summary for quick inspection in examples/tests.
pub fn degree_summary(g: &GraphHandle) -> Vec<(Value, usize)> {
    let mut out: Vec<(Value, usize)> = g
        .vertices()
        .map(|u| (g.key_of(u).clone(), g.degree(u)))
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{GraphGen, GraphGenConfig};
    use graphgen_reldb::{Column, Database, Schema, Table};

    fn tiny() -> Database {
        let mut person = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
        for (i, n) in [(1, "ann \"a\""), (2, "bob")] {
            person.push_row(vec![Value::int(i), Value::str(n)]).unwrap();
        }
        let mut knows = Table::new(Schema::new(vec![Column::int("a"), Column::int("b")]));
        knows.push_row(vec![Value::int(1), Value::int(2)]).unwrap();
        let mut db = Database::new();
        db.register("Person", person).unwrap();
        db.register("Knows", knows).unwrap();
        db
    }

    fn extract() -> GraphHandle {
        let db = tiny();
        let gg = GraphGen::with_config(
            &db,
            GraphGenConfig::builder()
                .auto_expand_threshold(None)
                .build(),
        );
        gg.extract(
            "Nodes(ID, Name) :- Person(ID, Name).\n\
             Edges(A, B) :- Knows(A, B).",
        )
        .unwrap()
    }

    #[test]
    fn edge_list_format() {
        let g = extract();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "1\t2\n");
    }

    #[test]
    fn json_is_escaped_and_shaped() {
        let g = extract();
        let mut buf = Vec::new();
        write_json(&g, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("{\"nodes\":["));
        assert!(s.contains("\\\"a\\\""), "{s}");
        assert!(s.ends_with("\"edges\":[[1,2]]}"), "{s}");
    }

    #[test]
    fn degree_summary_sorted() {
        let g = extract();
        let d = degree_summary(&g);
        assert_eq!(d, vec![(Value::int(1), 1), (Value::int(2), 0)]);
    }

    #[test]
    fn snapshot_roundtrip_every_representation() {
        use crate::handle::ConvertOptions;
        use graphgen_graph::RepKind;
        let g = extract();
        let opts = ConvertOptions::default();
        for target in RepKind::all() {
            let Ok(h) = g.convert(target, &opts) else {
                continue; // representations infeasible for this shape
            };
            let bytes = encode_snapshot(&h);
            let back = decode_snapshot(&bytes).unwrap();
            assert_eq!(back.kind(), h.kind(), "{target}");
            assert_eq!(back.canonical_bytes(), h.canonical_bytes(), "{target}");
            // Deterministic bytes.
            assert_eq!(encode_snapshot(&back), bytes, "{target}");
        }
    }

    #[test]
    fn snapshot_roundtrip_restores_incremental_state() {
        let mut db = tiny();
        let gg = GraphGen::with_config(
            &db,
            GraphGenConfig::builder()
                .auto_expand_threshold(None)
                .incremental(true)
                .threads(1)
                .build(),
        );
        let mut original = gg
            .extract(
                "Nodes(ID, Name) :- Person(ID, Name).\n\
                 Edges(A, B) :- Knows(A, B).",
            )
            .unwrap();
        let mut restored = decode_snapshot(&encode_snapshot(&original)).unwrap();
        assert!(restored.is_incremental());
        assert_eq!(restored.canonical_bytes(), original.canonical_bytes());
        // Both handles must evolve identically under further deltas.
        let delta = db
            .insert_rows(
                "Knows",
                vec![
                    vec![Value::int(2), Value::int(1)],
                    vec![Value::int(1), Value::int(2)],
                ],
            )
            .unwrap();
        original.apply_delta(&delta).unwrap();
        restored.apply_delta(&delta).unwrap();
        assert_eq!(restored.canonical_bytes(), original.canonical_bytes());
        // A brand-new node key exercises the node-entry state.
        let delta = db
            .insert_rows("Person", vec![vec![Value::int(3), Value::str("carol")]])
            .unwrap();
        original.apply_delta(&delta).unwrap();
        restored.apply_delta(&delta).unwrap();
        assert_eq!(restored.canonical_bytes(), original.canonical_bytes());
    }

    /// Snapshot taken after dictionary churn — deletes that release value
    /// references (freeing dense ids onto the free list) and a revive —
    /// must decode into a handle whose dictionary *continues* identically:
    /// further deltas that mint brand-new values (reusing freed slots) and
    /// revive a deleted node key must keep the live and restored handles
    /// byte-identical at every step. This is the recovery guarantee for the
    /// interned hot paths: the persisted dictionary carries its free list,
    /// so id assignment after decode matches the handle that never
    /// restarted.
    #[test]
    fn snapshot_after_dictionary_churn_continues_identically() {
        let mut db = tiny();
        let gg = GraphGen::with_config(
            &db,
            GraphGenConfig::builder()
                .auto_expand_threshold(None)
                .incremental(true)
                .threads(1)
                .build(),
        );
        let mut original = gg
            .extract(
                "Nodes(ID, Name) :- Person(ID, Name).\n\
                 Edges(A, B) :- Knows(A, B).",
            )
            .unwrap();
        // Churn the dictionary before the snapshot: drop the only edge row
        // (releasing pair references), re-add it reversed, then delete a
        // node row so its name's slot is freed and node 1 goes away while
        // an edge still names it.
        for delta in [
            db.delete_rows("Knows", &[vec![Value::int(1), Value::int(2)]])
                .unwrap(),
            db.insert_rows("Knows", vec![vec![Value::int(2), Value::int(1)]])
                .unwrap(),
            db.delete_rows("Person", &[vec![Value::int(1), Value::str("ann \"a\"")]])
                .unwrap(),
        ] {
            original.apply_delta(&delta).unwrap();
        }
        let mut restored = decode_snapshot(&encode_snapshot(&original)).unwrap();
        assert_eq!(restored.canonical_bytes(), original.canonical_bytes());
        // Continue the stream on both sides: revive node 1 under a new
        // name (its adjacency must come back), mint brand-new values that
        // reuse freed dictionary slots, and retire an edge again.
        for delta in [
            db.insert_rows("Person", vec![vec![Value::int(1), Value::str("ann again")]])
                .unwrap(),
            db.insert_rows("Person", vec![vec![Value::int(9), Value::str("zoe")]])
                .unwrap(),
            db.insert_rows("Knows", vec![vec![Value::int(9), Value::int(2)]])
                .unwrap(),
            db.delete_rows("Knows", &[vec![Value::int(2), Value::int(1)]])
                .unwrap(),
        ] {
            original.apply_delta(&delta).unwrap();
            restored.apply_delta(&delta).unwrap();
            assert_eq!(
                restored.canonical_bytes(),
                original.canonical_bytes(),
                "restored handle diverged after a post-decode delta"
            );
        }
        // The full encodings (dictionary and free list included) must
        // agree too, not just the canonical graph bytes.
        assert_eq!(encode_snapshot(&original), encode_snapshot(&restored));
    }

    /// A snapshot records the thread count it was encoded with, which may
    /// not fit the machine decoding it; `set_threads` lets the recovering
    /// side impose its own configuration (and changes no bytes).
    #[test]
    fn snapshot_thread_count_can_be_overridden() {
        let mut db = tiny();
        let gg = GraphGen::with_config(
            &db,
            GraphGenConfig::builder()
                .auto_expand_threshold(None)
                .incremental(true)
                .threads(2)
                .build(),
        );
        let original = gg
            .extract(
                "Nodes(ID, Name) :- Person(ID, Name).\n\
                 Edges(A, B) :- Knows(A, B).",
            )
            .unwrap();
        let mut restored = decode_snapshot(&encode_snapshot(&original)).unwrap();
        assert_eq!(restored.incremental_state().unwrap().threads(), 2);
        restored.set_threads(0); // clamps to 1
        assert_eq!(restored.incremental_state().unwrap().threads(), 1);
        let delta = db
            .insert_rows("Knows", vec![vec![Value::int(2), Value::int(1)]])
            .unwrap();
        restored.apply_delta(&delta).unwrap();
        let mut reference = original;
        reference.apply_delta(&delta).unwrap();
        assert_eq!(restored.canonical_bytes(), reference.canonical_bytes());
    }

    /// An incremental handle converted away from C-DUP carries a condensed
    /// shadow; the snapshot must restore it so the generic patch path
    /// keeps working after decode.
    #[test]
    fn snapshot_roundtrip_restores_the_shadow() {
        use crate::handle::ConvertOptions;
        use graphgen_graph::RepKind;
        let mut db = tiny();
        let gg = GraphGen::with_config(
            &db,
            GraphGenConfig::builder()
                .auto_expand_threshold(None)
                .incremental(true)
                .threads(1)
                .build(),
        );
        let extracted = gg
            .extract(
                "Nodes(ID, Name) :- Person(ID, Name).\n\
                 Edges(A, B) :- Knows(A, B).",
            )
            .unwrap();
        let mut original = extracted
            .convert(RepKind::Bitmap, &ConvertOptions::default())
            .unwrap();
        let mut restored = decode_snapshot(&encode_snapshot(&original)).unwrap();
        assert_eq!(restored.kind(), RepKind::Bitmap);
        assert!(restored.is_incremental());
        let delta = db
            .insert_rows("Knows", vec![vec![Value::int(2), Value::int(1)]])
            .unwrap();
        original.apply_delta(&delta).unwrap();
        restored.apply_delta(&delta).unwrap();
        assert_eq!(restored.canonical_bytes(), original.canonical_bytes());
        // The shadow also keeps onward conversions feasible after decode.
        let back = restored
            .convert(RepKind::CDup, &ConvertOptions::default())
            .unwrap();
        assert_eq!(back.canonical_bytes(), restored.canonical_bytes());
    }

    /// Older-format snapshots (`GGSNAP2\0` value-keyed state, `GGSNAP1\0`
    /// flat adjacency) must fail with a clean magic mismatch, not a
    /// misparse.
    #[test]
    fn snapshot_rejects_old_magic() {
        use crate::error::ErrorKind;
        let g = extract();
        let mut bytes = encode_snapshot(&g);
        assert_eq!(&bytes[..8], b"GGSNAP3\0");
        for old in [*b"GGSNAP2\0", *b"GGSNAP1\0"] {
            bytes[..8].copy_from_slice(&old);
            let err = decode_snapshot(&bytes).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::Snapshot);
            assert!(
                err.to_string().contains("bad magic"),
                "unexpected error: {err}"
            );
        }
        // Restoring the current magic makes the same bytes decode again.
        bytes[..8].copy_from_slice(&SNAPSHOT_MAGIC);
        assert!(decode_snapshot(&bytes).is_ok());
    }

    /// Identical adjacency chunks inside one snapshot are written once and
    /// decode back onto the **same** `Arc` (structural sharing survives the
    /// disk round-trip).
    #[test]
    fn snapshot_chunks_are_deduplicated_and_rebuilt_shared() {
        use graphgen_common::IdMap;
        use graphgen_graph::{CondensedBuilder, Properties, RealId, CHUNK_LEN};
        // Two full real chunks with identical lists (every node points at
        // the one virtual node).
        let n = CHUNK_LEN * 2;
        let mut b = CondensedBuilder::new(n);
        let v = b.add_virtual();
        for u in 0..n as u32 {
            b.real_to_virtual(RealId(u), v);
        }
        let mut ids = IdMap::new();
        for i in 0..n {
            ids.intern(graphgen_reldb::Value::int(i as i64));
        }
        let h = GraphHandle::from_parts(
            crate::AnyGraph::CDup(b.build()),
            ids,
            Properties::new(n),
            Default::default(),
        );
        let bytes = encode_snapshot(&h);
        // Header: magic(8) | u64 chunk capacity | u64 chunk count — the two
        // identical real chunks collapse with each other (the virtual
        // store's single big list stays distinct): 2 table entries, not 3.
        let n_chunks = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        assert_eq!(n_chunks, 2, "identical chunks not deduplicated on disk");
        let back = decode_snapshot(&bytes).unwrap();
        let core = back.graph().as_condensed().unwrap();
        assert!(
            std::sync::Arc::ptr_eq(
                &core.real_out_chunks().chunks()[0],
                &core.real_out_chunks().chunks()[1]
            ),
            "deduplicated chunks not rebuilt shared"
        );
        assert_eq!(back.canonical_bytes(), h.canonical_bytes());
    }

    /// An incremental handle converted away from C-DUP stores the pristine
    /// condensed structure twice — once inside the representation (the
    /// BITMAP core) and once as the maintenance shadow. Their chunks are
    /// byte-identical, so the snapshot must carry them once.
    #[test]
    fn snapshot_dedups_core_against_shadow() {
        use crate::handle::ConvertOptions;
        use graphgen_graph::RepKind;
        let db = tiny();
        let gg = GraphGen::with_config(
            &db,
            GraphGenConfig::builder()
                .auto_expand_threshold(None)
                .incremental(true)
                .threads(1)
                .build(),
        );
        let cdup = gg
            .extract(
                "Nodes(ID, Name) :- Person(ID, Name).\n\
                 Edges(A, B) :- Knows(A, B).",
            )
            .unwrap();
        let bmp = cdup
            .convert(RepKind::Bitmap, &ConvertOptions::default())
            .unwrap();
        let bytes = encode_snapshot(&bmp);
        let n_chunks = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        // The C-DUP original stores the structure once; the converted
        // handle stores it twice (core + shadow) yet must reference the
        // same deduplicated table entries.
        let cdup_chunks = u64::from_le_bytes(encode_snapshot(&cdup)[16..24].try_into().unwrap());
        assert_eq!(
            n_chunks, cdup_chunks,
            "shadow chunks duplicated instead of shared with the core"
        );
        // And the trip is still lossless.
        let back = decode_snapshot(&bytes).unwrap();
        assert_eq!(back.canonical_bytes(), bmp.canonical_bytes());
        assert!(back.is_incremental());
    }

    #[test]
    fn snapshot_rejects_corruption() {
        use crate::error::ErrorKind;
        let g = extract();
        let bytes = encode_snapshot(&g);
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert_eq!(
            decode_snapshot(&bad).unwrap_err().kind(),
            ErrorKind::Snapshot
        );
        // Truncation anywhere must error, never panic.
        for cut in 0..bytes.len() {
            assert!(decode_snapshot(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(
            decode_snapshot(&long).unwrap_err().kind(),
            ErrorKind::Snapshot
        );
    }
}
