//! Cache semantics of the `ANALYZE` engine: `(graph, algo, params,
//! version)` hit/miss/invalidation across publishes, single-flight
//! deduplication of concurrent identical requests, retention of
//! superseded-version results, cold-cache recovery with identical
//! answers, the no-blocking guarantee (reads stay version-fresh while a
//! long analysis runs), and one-line framing of results built from
//! newline-bearing keys.

use graphgen_datagen::relational::DBLP_COAUTHORS;
use graphgen_datagen::{dblp_like, DblpConfig};
use graphgen_reldb::{Column, Database, Schema, Table, Value};
use graphgen_serve::protocol::{execute, parse_command};
use graphgen_serve::testutil::TempDir;
use graphgen_serve::{Algo, AnalyzeParams, GraphService, ServiceConfig, TableMutation};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

fn small_service() -> GraphService {
    let db = dblp_like(DblpConfig {
        authors: 80,
        publications: 140,
        avg_authors_per_pub: 2.0,
        seed: 5,
    });
    let service = GraphService::in_memory(db);
    service.extract("co", DBLP_COAUTHORS).unwrap();
    service
}

fn insert_batch(pid: i64) -> TableMutation {
    TableMutation::new(
        "AuthorPub",
        vec![
            vec![Value::int(1), Value::int(pid)],
            vec![Value::int(2), Value::int(pid)],
        ],
        vec![],
    )
}

#[test]
fn hit_miss_and_invalidation_across_publishes() {
    let service = small_service();
    let params = AnalyzeParams::default();
    // Miss → compute; repeat → hit, same Arc.
    let a = service.analyze("co", Algo::Degree, &params).unwrap();
    let b = service.analyze("co", Algo::Degree, &params).unwrap();
    assert!(Arc::ptr_eq(&a, &b));
    let c0 = service.analyze_counters();
    assert_eq!((c0.computes, c0.hits, c0.cached), (1, 1, 1));
    // Different params on pagerank are a different key.
    service.analyze("co", Algo::Pagerank, &params).unwrap();
    let other = AnalyzeParams {
        damping: 0.5,
        ..AnalyzeParams::default()
    };
    service.analyze("co", Algo::Pagerank, &other).unwrap();
    assert_eq!(service.analyze_counters().computes, 3);
    // A publish invalidates: the same request computes again on the new
    // version, while the superseded entry stays readable, stale-tagged.
    service.apply(&[insert_batch(500)]).unwrap();
    let stale = service.analyze_cached("co", Algo::Degree, &params).unwrap();
    assert_eq!(stale.version(), 1);
    assert!(stale.render(2).contains("fresh=false"));
    let fresh = service.analyze("co", Algo::Degree, &params).unwrap();
    assert_eq!(fresh.version(), 2);
    assert_ne!(stale.outcome().summary, String::new());
    // Both versions of the degree group are retained (KEEP_VERSIONS = 2).
    let counters = service.analyze_counters();
    assert_eq!(counters.computes, 4);
    assert_eq!(counters.cached, 4); // degree@1, degree@2, 2× pagerank@1
}

#[test]
fn concurrent_same_key_requests_compute_once() {
    let service = Arc::new(small_service());
    let params = AnalyzeParams::default();
    const REQUESTS: usize = 8;
    let barrier = Arc::new(Barrier::new(REQUESTS));
    let mut handles = Vec::new();
    for _ in 0..REQUESTS {
        let service = Arc::clone(&service);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            service
                .analyze("co", Algo::Pagerank, &AnalyzeParams::default())
                .unwrap()
        }));
    }
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Exactly one computation ran; every request got the same entry.
    let counters = service.analyze_counters();
    assert_eq!(counters.computes, 1, "{counters:?}");
    assert_eq!(counters.hits as usize, REQUESTS - 1, "{counters:?}");
    for r in &results[1..] {
        assert!(Arc::ptr_eq(&results[0], r));
    }
    // And the cached entry answers follow-ups without recomputing.
    service.analyze("co", Algo::Pagerank, &params).unwrap();
    assert_eq!(service.analyze_counters().computes, 1);
}

#[test]
fn recovery_starts_cold_with_identical_answers() {
    let dir = TempDir::new("analyze-recovery");
    let db = dblp_like(DblpConfig {
        authors: 60,
        publications: 100,
        avg_authors_per_pub: 2.0,
        seed: 9,
    });
    let params = AnalyzeParams::default();
    let before = {
        let service = GraphService::create(dir.path(), db, ServiceConfig::default()).unwrap();
        service.extract("co", DBLP_COAUTHORS).unwrap();
        service.apply(&[insert_batch(900)]).unwrap();
        let entry = service.analyze("co", Algo::Components, &params).unwrap();
        assert!(service.analyze_counters().computes > 0);
        entry
    };
    // Reopen: the cache is cold by construction (never persisted)…
    let service = GraphService::open(dir.path()).unwrap();
    let counters = service.analyze_counters();
    assert_eq!(
        (counters.computes, counters.hits, counters.cached),
        (0, 0, 0),
        "recovered service must start with a cold cache"
    );
    // …and recomputation on the recovered state gives identical answers.
    let after = service.analyze("co", Algo::Components, &params).unwrap();
    assert_eq!(after.version(), before.version());
    assert!(!after.warm());
    assert_eq!(after.outcome().labels, before.outcome().labels);
    assert_eq!(after.outcome().summary, before.outcome().summary);
}

/// The no-blocking guarantee: while a deliberately long analysis occupies
/// the worker pool, the writer keeps publishing and readers keep seeing
/// every new version immediately.
#[test]
fn long_analysis_never_blocks_readers_or_writer() {
    let db = dblp_like(DblpConfig {
        authors: 2_000,
        publications: 3_600,
        avg_authors_per_pub: 2.5,
        seed: 7,
    });
    let service = Arc::new(GraphService::in_memory(db));
    service.extract("co", DBLP_COAUTHORS).unwrap();
    // tol far below reachable precision → the run takes all its iterations.
    let long_params = AnalyzeParams {
        damping: 0.85,
        tol: 1e-300,
        max_iterations: 2_000,
    };
    let done = Arc::new(AtomicBool::new(false));
    let analysis = {
        let service = Arc::clone(&service);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let entry = service.analyze("co", Algo::Pagerank, &long_params).unwrap();
            done.store(true, Ordering::SeqCst);
            entry
        })
    };
    // Wait for the claim (synchronous in `analyze`, before any compute):
    // once `in_flight` is visible the analysis has pinned version 1, so
    // the churn below provably overlaps it.
    let claim_deadline = Instant::now() + std::time::Duration::from_secs(30);
    while service.analyze_counters().in_flight == 0 {
        assert!(
            Instant::now() < claim_deadline && !done.load(Ordering::SeqCst),
            "analysis finished or never claimed before churn could start"
        );
        std::thread::yield_now();
    }
    // Writer + reader churn while the analysis runs: every publish must
    // become visible to the very next snapshot, with no added latency
    // class (the analysis holds no service lock).
    let churn_started = Instant::now();
    let mut reached_version = 1;
    for round in 0..6 {
        service.apply(&[insert_batch(10_000 + round)]).unwrap();
        let snap = service.snapshot("co").unwrap();
        assert_eq!(
            snap.version(),
            2 + round as u64,
            "reads must serve the freshest version immediately"
        );
        reached_version = snap.version();
    }
    let churn_elapsed = churn_started.elapsed();
    let analysis_was_still_running = !done.load(Ordering::SeqCst);
    let entry = analysis.join().unwrap();
    // The analysis ran on its pinned snapshot (version 1), untouched by
    // the six publishes that landed meanwhile.
    assert_eq!(entry.version(), 1);
    assert_eq!(entry.outcome().iterations, 2_000);
    assert_eq!(reached_version, 7);
    assert!(
        analysis_was_still_running,
        "churn ({churn_elapsed:?}) must finish while the 2000-iteration \
         analysis is still running — otherwise this test proved nothing"
    );
}

/// Newline-bearing vertex keys surface in PageRank's `top=` summary; the
/// rendered response must stay one line (the framing satellite).
#[test]
fn analyze_responses_never_tear_framing() {
    let mut t = Table::new(Schema::new(vec![Column::str("name"), Column::int("grp")]));
    for (name, grp) in [
        ("alice\nbob", 1),
        ("carol\rdave", 1),
        ("plain", 1),
        ("eve\n", 2),
        ("frank", 2),
    ] {
        t.push_row(vec![Value::str(name), Value::int(grp)]).unwrap();
    }
    let mut db = Database::new();
    db.register("T", t).unwrap();
    let service = GraphService::in_memory(db);
    service
        .extract(
            "g",
            "Nodes(Name) :- T(Name, G). Edges(A, B) :- T(A, G), T(B, G).",
        )
        .unwrap();
    let run = |line: &str| execute(&service, &parse_command(line).unwrap().unwrap());
    for cmd in [
        "ANALYZE g pagerank",
        "ANALYZE g degree",
        "ANALYZE STATUS g pagerank",
    ] {
        let resp = run(cmd);
        assert!(resp.starts_with("OK "), "{cmd}: {resp}");
        assert!(
            !resp.contains('\n') && !resp.contains('\r'),
            "{cmd} tore framing: {resp:?}"
        );
    }
    // The escaped key is present in the summary, not a raw line break.
    let resp = run("ANALYZE STATUS g pagerank");
    assert!(resp.contains("top="), "{resp}");
    assert!(resp.contains("\\n") || resp.contains("\\r"), "{resp}");
}
