//! # graphgen
//!
//! A Rust implementation of **GraphGen** — "Extracting and Analyzing Hidden
//! Graphs from Relational Databases" (Xirogiannopoulos & Deshpande, SIGMOD
//! 2017). Declaratively extract graphs hidden in relational data, hold them
//! in condensed in-memory representations that can be orders of magnitude
//! smaller than the expanded graph, and run graph algorithms directly on
//! them.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`reldb`] — the in-memory relational engine + catalog statistics
//! * [`dsl`] — the Datalog-based extraction language
//! * [`core`] — planner, extractor, representation chooser, serializer
//! * [`graph`] — C-DUP / EXP / DEDUP-1 / DEDUP-2 / BITMAP representations
//! * [`dedup`] — the §5 preprocessing & deduplication algorithms
//! * [`algo`] — graph algorithms + the vertex-centric framework
//! * [`giraph`] — the message-passing BSP port with message accounting
//! * [`vminer`] — the VMiner structural-compression baseline
//! * [`datagen`] — schema-faithful synthetic datasets
//!
//! See `examples/quickstart.rs` for the 5-minute tour.

pub use graphgen_algo as algo;
pub use graphgen_common as common;
pub use graphgen_core as core;
pub use graphgen_datagen as datagen;
pub use graphgen_dedup as dedup;
pub use graphgen_dsl as dsl;
pub use graphgen_giraph as giraph;
pub use graphgen_graph as graph;
pub use graphgen_reldb as reldb;
pub use graphgen_vminer as vminer;
