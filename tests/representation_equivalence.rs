//! Property tests: every representation built from the same condensed graph
//! is semantically identical (same expanded edge set), and each maintains
//! its structural invariant. This is the core correctness contract of §4.
// Requires the external `proptest` crate (see Cargo.toml); compiled only
// when the `proptest-tests` feature is enabled.
#![cfg(feature = "proptest-tests")]

use graphgen::common::VertexOrdering;
use graphgen::dedup::{bitmap1, bitmap2, dedup2_greedy, Dedup1Algorithm};
use graphgen::graph::{
    expand_to_edge_list, validate, CondensedBuilder, CondensedGraph, ExpandedGraph, GraphRep,
    RealId,
};
use proptest::prelude::*;

/// Strategy: a random symmetric single-layer condensed graph given as
/// member sets (what co-occurrence extraction produces).
fn member_sets(max_real: usize, max_virt: usize) -> impl Strategy<Value = (usize, Vec<Vec<u32>>)> {
    (2..=max_real).prop_flat_map(move |n_real| {
        let set = proptest::collection::vec(0..n_real as u32, 2..=(n_real.min(8)));
        proptest::collection::vec(set, 0..=max_virt).prop_map(move |sets| (n_real, sets))
    })
}

fn build(n_real: usize, sets: &[Vec<u32>]) -> CondensedGraph {
    let mut b = CondensedBuilder::new(n_real);
    for set in sets {
        let mut members: Vec<RealId> = set.iter().map(|&i| RealId(i)).collect();
        members.sort();
        members.dedup();
        if members.len() >= 2 {
            b.clique(&members);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_representations_expand_identically((n_real, sets) in member_sets(24, 10)) {
        let cdup = build(n_real, &sets);
        let truth = expand_to_edge_list(&cdup);

        let exp = ExpandedGraph::from_rep(&cdup);
        prop_assert_eq!(expand_to_edge_list(&exp), truth.clone());

        for algo in Dedup1Algorithm::all() {
            for ordering in VertexOrdering::all() {
                let d1 = algo.run(&cdup, ordering, 42);
                prop_assert_eq!(
                    expand_to_edge_list(&d1), truth.clone(),
                    "{} {:?}", algo.label(), ordering
                );
                prop_assert!(validate::validate_dedup1(&d1).is_ok(),
                    "{} {:?} violates the single-path invariant", algo.label(), ordering);
            }
        }

        let d2 = dedup2_greedy(&cdup, VertexOrdering::Descending, 42);
        prop_assert_eq!(expand_to_edge_list(&d2), truth.clone());
        prop_assert!(validate::validate_dedup2(&d2).is_ok());

        let b1 = bitmap1(cdup.clone());
        prop_assert_eq!(expand_to_edge_list(&b1), truth.clone());
        prop_assert!(validate::validate_no_duplicate_emission(&b1).is_ok());

        let (b2, _) = bitmap2(cdup.clone(), 1);
        prop_assert_eq!(expand_to_edge_list(&b2), truth.clone());
        prop_assert!(validate::validate_no_duplicate_emission(&b2).is_ok());
    }

    #[test]
    fn preprocessing_preserves_semantics((n_real, sets) in member_sets(20, 8)) {
        let mut g = build(n_real, &sets);
        let truth = expand_to_edge_list(&g);
        graphgen::dedup::expand_cheap_virtuals(&mut g, 1);
        prop_assert_eq!(expand_to_edge_list(&g), truth);
    }

    #[test]
    fn vminer_is_lossless((n_real, sets) in member_sets(20, 8)) {
        let cdup = build(n_real, &sets);
        let exp = ExpandedGraph::from_rep(&cdup);
        let (vm, _) = graphgen::vminer::vminer(&exp, Default::default());
        prop_assert_eq!(expand_to_edge_list(&vm), expand_to_edge_list(&exp));
        prop_assert!(validate::validate_dedup1(&vm).is_ok());
    }

    #[test]
    fn delete_edge_removes_exactly_one_pair((n_real, sets) in member_sets(16, 6)) {
        let mut g = build(n_real, &sets);
        let edges = expand_to_edge_list(&g);
        if let Some(&(u, v)) = edges.first() {
            g.delete_edge(RealId(u), RealId(v));
            let mut expected = edges.clone();
            expected.retain(|&e| e != (u, v));
            prop_assert_eq!(expand_to_edge_list(&g), expected);
        }
    }

    #[test]
    fn delete_vertex_removes_exactly_its_pairs((n_real, sets) in member_sets(16, 6)) {
        let mut g = build(n_real, &sets);
        let edges = expand_to_edge_list(&g);
        let victim = (n_real / 2) as u32;
        g.delete_vertex(RealId(victim));
        let mut expected = edges.clone();
        expected.retain(|&(a, b)| a != victim && b != victim);
        prop_assert_eq!(expand_to_edge_list(&g), expected.clone());
        g.compact();
        prop_assert_eq!(expand_to_edge_list(&g), expected);
    }

    #[test]
    fn flatten_preserves_multilayer_semantics(
        n_real in 2usize..12,
        edges in proptest::collection::vec((0u32..12, 0u32..12), 0..20)
    ) {
        // Build a random 2-layer graph: layer-1 vnodes feed layer-2 vnodes.
        let mut b = CondensedBuilder::new(n_real);
        let l1 = b.add_virtual();
        let l2 = b.add_virtual();
        b.virtual_to_virtual(l1, l2);
        for (x, y) in edges {
            let u = RealId(x % n_real as u32);
            let t = RealId(y % n_real as u32);
            b.real_to_virtual(u, l1);
            b.virtual_to_real(l2, t);
        }
        let g = b.build();
        let flat = graphgen::dedup::flatten_to_single_layer(&g);
        prop_assert!(flat.is_single_layer());
        prop_assert_eq!(expand_to_edge_list(&flat), expand_to_edge_list(&g));
    }
}
