//! Negative tests: programs that previously failed at *runtime* (unknown
//! table from the relational engine, arity mismatch mid-scan, asymmetric
//! DEDUP-2 conversion) are now rejected — or predicted — by static
//! analysis before any extraction work happens.

use graphgen_core::{ConvertOptions, Error, ErrorKind, GraphGen, GraphGenConfig};
use graphgen_dsl::CheckOptions;
use graphgen_graph::RepKind;
use graphgen_reldb::{Column, Database, Schema, Table, Value};

fn fig1_db() -> Database {
    let mut author = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
    for a in 1..=3 {
        author
            .push_row(vec![Value::int(a), Value::str(format!("a{a}"))])
            .unwrap();
    }
    let mut ap = Table::new(Schema::new(vec![Column::int("aid"), Column::int("pid")]));
    for (a, p) in [(1, 1), (2, 1), (2, 2), (3, 2)] {
        ap.push_row(vec![Value::int(a), Value::int(p)]).unwrap();
    }
    let mut db = Database::new();
    db.register("Author", author).unwrap();
    db.register("AuthorPub", ap).unwrap();
    db
}

fn codes(e: &Error) -> Vec<String> {
    e.as_check()
        .expect("check rejection")
        .iter()
        .map(|d| d.code.code().to_string())
        .collect()
}

#[test]
fn unknown_table_is_a_check_error_not_a_db_error() {
    let db = fig1_db();
    let gg = GraphGen::new(&db);
    let err = gg
        .extract("Nodes(ID, N) :- Writer(ID, N).\nEdges(A, B) :- AuthorPub(A, P), AuthorPub(B, P).")
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Check, "was: {err}");
    assert_eq!(codes(&err), ["E001"]);
    // The rejection carries the span and a suggestion, unlike the old
    // DbError::UnknownTable it preempts.
    let msg = err.to_string();
    assert!(msg.contains("E001 unknown-relation at 1:17"), "{msg}");
}

#[test]
fn arity_mismatch_is_a_check_error_not_a_db_error() {
    let db = fig1_db();
    let gg = GraphGen::new(&db);
    let err = gg
        .extract(
            "Nodes(ID, N) :- Author(ID, N).\n\
             Edges(A, B) :- AuthorPub(A, P, X), AuthorPub(B, P, X).",
        )
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Check, "was: {err}");
    assert_eq!(codes(&err), ["E003", "E003"]);
}

#[test]
fn type_mismatched_constant_is_caught_statically() {
    let db = fig1_db();
    let gg = GraphGen::new(&db);
    // `name` is a string column; an integer constant can never match.
    let err = gg
        .extract(
            "Nodes(ID) :- Author(ID, 5).\n\
             Edges(A, B) :- AuthorPub(A, P), AuthorPub(B, P).",
        )
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Check);
    assert_eq!(codes(&err), ["E002"]);
}

#[test]
fn extract_full_pre_validates_too() {
    let db = fig1_db();
    let gg = GraphGen::new(&db);
    let err = gg
        .extract_full("Nodes(ID) :- Nope(ID).\nEdges(A, B) :- AuthorPub(A, P), AuthorPub(B, P).")
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Check);
    assert_eq!(codes(&err), ["E001"]);
}

#[test]
fn parse_errors_stay_dsl_errors() {
    let db = fig1_db();
    let gg = GraphGen::new(&db);
    let err = gg.extract("Nodes(ID :- Author(ID, N).").unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Dsl);
}

#[test]
fn check_reports_without_extracting() {
    let db = fig1_db();
    let gg = GraphGen::new(&db);
    // Valid program: spec present, no diagnostics.
    let report = gg
        .check("Nodes(ID, N) :- Author(ID, N).\nEdges(A, B) :- AuthorPub(A, P), AuthorPub(B, P).")
        .unwrap();
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert!(report.spec.is_some());
    // Invalid: diagnostics, no spec — and no Error, because nothing ran.
    let report = gg.check("Nodes(ID, N) :- Author(ID, N, X).").unwrap();
    assert!(report.has_errors());
    assert!(report.spec.is_none());
}

#[test]
fn conversion_lint_predicts_the_asymmetric_runtime_failure() {
    // A bipartite chain over two different relations: DEDUP-2 conversion
    // fails at runtime with ConvertError::Asymmetric. The `conversion`
    // lint group predicts it (W103) before extraction.
    let mut taught = Table::new(Schema::new(vec![Column::int("iid"), Column::int("cid")]));
    taught
        .push_row(vec![Value::int(100), Value::int(7)])
        .unwrap();
    let mut took = Table::new(Schema::new(vec![Column::int("sid"), Column::int("cid")]));
    for s in [1, 2] {
        took.push_row(vec![Value::int(s), Value::int(7)]).unwrap();
    }
    let mut people = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
    for p in [1, 2, 100] {
        people
            .push_row(vec![Value::int(p), Value::str(format!("p{p}"))])
            .unwrap();
    }
    let mut db = Database::new();
    db.register("Person", people).unwrap();
    db.register("TaughtCourse", taught).unwrap();
    db.register("TookCourse", took).unwrap();

    let q3 = "Nodes(ID, Name) :- Person(ID, Name).\n\
              Edges(ID1, ID2) :- TaughtCourse(ID1, C), TookCourse(ID2, C).";
    let cfg = GraphGenConfig::builder()
        .large_output_factor(0.0) // force the condensed path
        .preprocess(false)
        .auto_expand_threshold(None)
        .build();
    let gg = GraphGen::with_config(&db, cfg);

    // The static prediction…
    let mut opts = CheckOptions::default();
    opts.enable_lint("conversion").unwrap();
    let report = gg.check_with(q3, &opts).unwrap();
    let warned: Vec<&str> = report.diagnostics.iter().map(|d| d.code.code()).collect();
    assert!(warned.contains(&"W103"), "{warned:?}");
    assert!(report.spec.is_some(), "lints never block extraction");

    // …matches the runtime behaviour it predicts.
    let handle = gg.extract(q3).unwrap();
    let err = handle
        .convert(RepKind::Dedup2, &ConvertOptions::default())
        .unwrap_err();
    assert_eq!(err, graphgen_core::ConvertError::Asymmetric);
}
