//! Estimated-vs-actual cardinality oracle for the cost engine.
//!
//! Every `JoinDecision::estimated_output` the planner records is the
//! textbook uniform-assumption estimate `|L|·|R|/d` over the two
//! *adjacent* atoms of a chain. This oracle computes the **true** join
//! output for the same atom pair by bag-joining the base tables directly
//! (Σ_v cntL(v)·cntR(v) after constant filters) and checks the estimate
//! stays within a bounded factor on the seeded datagen workloads — and
//! then shows exactly where the assumption breaks, with a skewed-key
//! table whose hot key makes the estimate a gross underestimate.

mod plan_corpus;

use graphgen::core::GraphGen;
use graphgen::dsl::{compile, ChainAtom, ConstFilter};
use graphgen::reldb::{Column, Database, Schema, Table, Value};
use std::collections::HashMap;

/// Does the row pass every constant selection of the atom?
fn passes(row: &[Value], filters: &[ConstFilter]) -> bool {
    filters.iter().all(|f| match f {
        ConstFilter::Int(col, v) => row[*col] == Value::int(*v),
        ConstFilter::Str(col, s) => row[*col] == Value::str(s.as_str()),
    })
}

/// Multiplicity of each value in `col` among the atom's surviving rows.
fn key_counts(db: &Database, atom: &ChainAtom, col: usize) -> HashMap<Value, f64> {
    let table = db.table(&atom.relation).expect("relation exists");
    let mut counts = HashMap::new();
    for row in table.iter_rows() {
        if passes(&row, &atom.filters) {
            *counts.entry(row[col].clone()).or_insert(0.0) += 1.0;
        }
    }
    counts
}

/// Exact bag-join output of two adjacent chain atoms.
fn true_join_output(db: &Database, left: &ChainAtom, right: &ChainAtom) -> f64 {
    let l = key_counts(db, left, left.out_col);
    let r = key_counts(db, right, right.in_col);
    l.iter()
        .map(|(key, n)| n * r.get(key).copied().unwrap_or(0.0))
        .sum()
}

/// The datagen generators skew group sizes (exponential / Zipf), so the
/// uniform assumption is not exact — but on these workloads it must stay
/// within a constant factor either way, or the large-output
/// classification in §4.2 would be noise. The loosest case in the corpus
/// is `dblp_temporal` (~6× low): its `year = 2000` selection is perfectly
/// correlated with the join key (every publication has exactly one year),
/// so multiplying the two independence-assumed selectivities undercounts
/// the surviving groups. The unfiltered workloads all land within ~2×.
const BOUND: f64 = 10.0;

#[test]
fn planner_estimates_track_true_join_outputs_within_a_bounded_factor() {
    let mut checked = 0usize;
    for (stem, db) in plan_corpus::corpus() {
        let dsl = plan_corpus::query_source(stem);
        let spec = compile(&dsl).unwrap_or_else(|e| panic!("{stem}: compile: {e}"));
        let handle = GraphGen::new(&db)
            .extract(&dsl)
            .unwrap_or_else(|e| panic!("{stem}: extract failed: {e}"));
        let report = handle.report();
        assert_eq!(
            report.plans.len(),
            spec.edges.len(),
            "{stem}: plan/chain count"
        );
        for (plan, chain) in report.plans.iter().zip(&spec.edges) {
            for j in &plan.joins {
                let left = &chain.steps[j.left_atom];
                let right = &chain.steps[j.left_atom + 1];
                let truth = true_join_output(&db, left, right);
                assert!(truth > 0.0, "{stem}: degenerate corpus, empty join");
                let ratio = j.estimated_output / truth;
                assert!(
                    (1.0 / BOUND..=BOUND).contains(&ratio),
                    "{stem}: join {} ⋈ {}: estimated {:.0} vs true {:.0} \
                     (ratio {ratio:.2} outside 1/{BOUND}..{BOUND})",
                    j.left_table,
                    j.right_table,
                    j.estimated_output,
                    truth,
                );
                checked += 1;
            }
        }
    }
    assert!(checked >= 6, "oracle checked only {checked} joins");
}

/// Where the uniform assumption breaks: a self-join key distribution with
/// one hot key. `|L|·|R|/d` spreads the 1000 rows evenly over the 100
/// distinct keys (estimate 10 000), but the hot key alone contributes
/// 901² ≈ 812 000 output rows — the estimate is off by ~80×. This is the
/// documented limitation of the n_distinct model (the paper's uniform
/// assumption, GraphGen §4.2): skew can only be caught after the fact,
/// which is exactly what the serving layer's drift detector is for.
#[test]
fn skewed_keys_break_the_uniform_assumption_as_an_underestimate() {
    let mut member = Table::new(Schema::new(vec![Column::int("uid"), Column::int("gid")]));
    // One hot group holds 901 of the 1000 memberships; the remaining 99
    // groups hold one each -> n_distinct(gid) = 100.
    for u in 0..901 {
        member
            .push_row(vec![Value::int(u), Value::int(0)])
            .expect("schema");
    }
    for g in 1..100 {
        member
            .push_row(vec![Value::int(1000 + g), Value::int(g)])
            .expect("schema");
    }
    let mut user = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
    for u in 0..2000 {
        user.push_row(vec![Value::int(u), Value::str(format!("u{u}"))])
            .expect("schema");
    }
    let mut db = Database::new();
    db.register("User", user).expect("fresh db");
    db.register("Member", member).expect("fresh db");

    let dsl = "Nodes(ID, Name) :- User(ID, Name).\n\
               Edges(A, B) :- Member(A, G), Member(B, G).";
    let spec = compile(dsl).expect("compiles");
    let handle = GraphGen::new(&db).extract(dsl).expect("extracts");
    let j = &handle.report().plans[0].joins[0];

    let chain = &spec.edges[0];
    let truth = true_join_output(&db, &chain.steps[0], &chain.steps[1]);
    assert_eq!(truth, 901.0 * 901.0 + 99.0, "hot key dominates the join");
    assert!(
        (j.estimated_output - 1000.0 * 1000.0 / 100.0).abs() < 1e-6,
        "uniform estimate is |L|·|R|/d = 10000, got {}",
        j.estimated_output
    );
    // The gross underestimate: more than an order of magnitude low.
    assert!(
        j.estimated_output < truth / 10.0,
        "estimate {:.0} should grossly undercount true {truth:.0} under skew",
        j.estimated_output
    );
}
