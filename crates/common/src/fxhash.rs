//! A from-scratch implementation of the Fx hashing algorithm (the fast,
//! non-cryptographic hash used inside rustc), plus `HashMap`/`HashSet` type
//! aliases built on it.
//!
//! GraphGen's hot paths hash small integer keys (node ids) billions of times:
//! the C-DUP on-the-fly deduplication keeps a hashset of seen neighbors per
//! `getNeighbors` call, and the BITMAP representations index bitmaps by
//! source node id. SipHash (std's default) is needlessly slow for this;
//! HashDoS is not a concern for an in-process analytics engine.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Fx algorithm (64-bit variant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hasher state. One `u64` of state, updated by rotate-xor-multiply.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add_to_hash(v as u64);
        self.add_to_hash((v >> 64) as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the Fx hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the Fx hash.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
        let mut hasher = FxHasher::default();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        assert_eq!(hash_of(&(1u64, 2u64)), hash_of(&(1u64, 2u64)));
    }

    #[test]
    fn different_small_ints_spread() {
        // Adjacent keys must not collide: that is the whole point of the
        // multiply step.
        let hashes: std::collections::HashSet<u64> = (0u32..10_000).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn byte_streams_with_different_lengths_differ() {
        // The length tag in `write` must distinguish prefix-padded inputs.
        assert_ne!(hash_of(&[1u8, 0, 0][..]), hash_of(&[1u8, 0][..]));
        assert_ne!(hash_of(&b"ab"[..]), hash_of(&b"ab\0"[..]));
    }

    #[test]
    fn map_and_set_work_end_to_end() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(1, "one");
        map.insert(2, "two");
        assert_eq!(map.get(&1), Some(&"one"));
        let set: FxHashSet<u32> = (0..100).collect();
        assert_eq!(set.len(), 100);
        assert!(set.contains(&55));
    }

    #[test]
    fn string_hashing_matches_incremental_writes() {
        // Hash of a str goes through `write`; sanity-check chunking at the
        // 8-byte boundary.
        for len in 0..=24 {
            let s: String = "x".repeat(len);
            let h1 = hash_of(&s.as_str());
            let h2 = hash_of(&s.as_str());
            assert_eq!(h1, h2, "len {len}");
        }
    }
}
