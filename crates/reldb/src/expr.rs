//! Row predicates (the WHERE clauses of generated queries).
//!
//! Extraction queries only need constant-equality selections (a Datalog atom
//! with a constant in some position) and conjunctions thereof, plus simple
//! comparisons so examples can express things like "papers since 2010"
//! (temporal graph extraction from the paper's introduction).

use crate::value::Value;
use graphgen_common::codec::{self, CodecError, Reader};

/// A predicate over a row (indexed by column position).
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true.
    True,
    /// `row[col] == value`.
    Eq(usize, Value),
    /// `row[col] != value`.
    Ne(usize, Value),
    /// `row[col] < value` (on the `Value` ordering; meaningful for ints).
    Lt(usize, Value),
    /// `row[col] <= value`.
    Le(usize, Value),
    /// `row[col] > value`.
    Gt(usize, Value),
    /// `row[col] >= value`.
    Ge(usize, Value),
    /// Conjunction.
    And(Vec<Predicate>),
}

impl Predicate {
    /// Evaluate against one row. Comparisons against NULL are false
    /// (except `Ne`, which is true when the stored value is non-NULL).
    pub fn eval(&self, row: &[Value]) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Eq(col, v) => &row[*col] == v,
            Predicate::Ne(col, v) => &row[*col] != v,
            Predicate::Lt(col, v) => !row[*col].is_null() && row[*col] < *v,
            Predicate::Le(col, v) => !row[*col].is_null() && row[*col] <= *v,
            Predicate::Gt(col, v) => !row[*col].is_null() && row[*col] > *v,
            Predicate::Ge(col, v) => !row[*col].is_null() && row[*col] >= *v,
            Predicate::And(ps) => ps.iter().all(|p| p.eval(row)),
        }
    }

    /// Evaluate against row `row` of `table` directly, without materializing
    /// the row. Semantics are identical to [`Predicate::eval`]; this is the
    /// scan hot path (`scan_project` only clones the projected columns of
    /// rows that pass).
    pub fn eval_at(&self, table: &crate::table::Table, row: usize) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Eq(col, v) => table.cell(row, *col) == v,
            Predicate::Ne(col, v) => table.cell(row, *col) != v,
            Predicate::Lt(col, v) => {
                let c = table.cell(row, *col);
                !c.is_null() && c < v
            }
            Predicate::Le(col, v) => {
                let c = table.cell(row, *col);
                !c.is_null() && c <= v
            }
            Predicate::Gt(col, v) => {
                let c = table.cell(row, *col);
                !c.is_null() && c > v
            }
            Predicate::Ge(col, v) => {
                let c = table.cell(row, *col);
                !c.is_null() && c >= v
            }
            Predicate::And(ps) => ps.iter().all(|p| p.eval_at(table, row)),
        }
    }

    /// Conjoin two predicates, flattening nested `And`s and dropping `True`s.
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::And(mut a), Predicate::And(b)) => {
                a.extend(b);
                Predicate::And(a)
            }
            (Predicate::And(mut a), p) => {
                a.push(p);
                Predicate::And(a)
            }
            (p, Predicate::And(mut b)) => {
                b.insert(0, p);
                Predicate::And(b)
            }
            (a, b) => Predicate::And(vec![a, b]),
        }
    }

    /// True if this predicate is the trivial `True`.
    pub fn is_trivial(&self) -> bool {
        matches!(self, Predicate::True)
    }

    /// Append the binary encoding of this predicate (a tag byte, then
    /// column and value for comparisons, count and children for `And`).
    /// Part of the graph snapshot format: the incremental maintenance
    /// state persists its pre-compiled atom predicates.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let cmp = |out: &mut Vec<u8>, tag: u8, col: &usize, v: &Value| {
            codec::put_u8(out, tag);
            codec::put_len(out, *col);
            v.encode_into(out);
        };
        match self {
            Predicate::True => codec::put_u8(out, 0),
            Predicate::Eq(c, v) => cmp(out, 1, c, v),
            Predicate::Ne(c, v) => cmp(out, 2, c, v),
            Predicate::Lt(c, v) => cmp(out, 3, c, v),
            Predicate::Le(c, v) => cmp(out, 4, c, v),
            Predicate::Gt(c, v) => cmp(out, 5, c, v),
            Predicate::Ge(c, v) => cmp(out, 6, c, v),
            Predicate::And(ps) => {
                codec::put_u8(out, 7);
                codec::put_len(out, ps.len());
                for p in ps {
                    p.encode_into(out);
                }
            }
        }
    }

    /// Decode one predicate (inverse of [`Predicate::encode_into`]).
    /// `And` nesting is capped (the compiler only ever produces flat
    /// conjunctions) so corrupt input reports an error instead of
    /// overflowing the decode stack.
    pub fn decode(r: &mut Reader<'_>) -> Result<Predicate, CodecError> {
        Self::decode_at_depth(r, 0)
    }

    fn decode_at_depth(r: &mut Reader<'_>, depth: u32) -> Result<Predicate, CodecError> {
        const MAX_DEPTH: u32 = 64;
        let at = r.pos();
        if depth > MAX_DEPTH {
            return Err(CodecError::invalid(at, "predicate nested too deeply"));
        }
        let tag = r.u8()?;
        if tag == 0 {
            return Ok(Predicate::True);
        }
        if tag == 7 {
            let n = r.len()?;
            let mut ps = Vec::with_capacity(n);
            for _ in 0..n {
                ps.push(Predicate::decode_at_depth(r, depth + 1)?);
            }
            return Ok(Predicate::And(ps));
        }
        let col = r.scalar()?;
        let v = Value::decode(r)?;
        Ok(match tag {
            1 => Predicate::Eq(col, v),
            2 => Predicate::Ne(col, v),
            3 => Predicate::Lt(col, v),
            4 => Predicate::Le(col, v),
            5 => Predicate::Gt(col, v),
            6 => Predicate::Ge(col, v),
            _ => return Err(CodecError::invalid(at, format!("bad predicate tag {tag}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Vec<Value> {
        vec![Value::int(5), Value::str("x"), Value::Null]
    }

    #[test]
    fn eq_and_ne() {
        assert!(Predicate::Eq(0, Value::int(5)).eval(&row()));
        assert!(!Predicate::Eq(0, Value::int(6)).eval(&row()));
        assert!(Predicate::Ne(1, Value::str("y")).eval(&row()));
        assert!(Predicate::Eq(2, Value::Null).eval(&row()));
    }

    #[test]
    fn comparisons() {
        assert!(Predicate::Lt(0, Value::int(6)).eval(&row()));
        assert!(Predicate::Le(0, Value::int(5)).eval(&row()));
        assert!(Predicate::Gt(0, Value::int(4)).eval(&row()));
        assert!(Predicate::Ge(0, Value::int(5)).eval(&row()));
        assert!(!Predicate::Gt(0, Value::int(5)).eval(&row()));
        // NULL never satisfies ordered comparisons.
        assert!(!Predicate::Lt(2, Value::int(100)).eval(&row()));
    }

    #[test]
    fn eval_at_matches_eval() {
        use crate::schema::{Column, Schema};
        use crate::table::Table;
        let mut t = Table::new(Schema::new(vec![Column::int("a"), Column::str("s")]));
        t.push_row(vec![Value::int(5), Value::str("x")]).unwrap();
        t.push_row(vec![Value::Null, Value::Null]).unwrap();
        let preds = [
            Predicate::True,
            Predicate::Eq(0, Value::int(5)),
            Predicate::Ne(1, Value::str("y")),
            Predicate::Lt(0, Value::int(6)),
            Predicate::Le(0, Value::int(5)),
            Predicate::Gt(0, Value::int(4)),
            Predicate::Ge(0, Value::int(6)),
            Predicate::Eq(1, Value::Null),
            Predicate::Eq(0, Value::int(5)).and(Predicate::Ne(1, Value::str("y"))),
        ];
        for p in &preds {
            for r in 0..t.num_rows() {
                assert_eq!(p.eval_at(&t, r), p.eval(&t.row(r)), "{p:?} row {r}");
            }
        }
    }

    #[test]
    fn codec_roundtrip() {
        use graphgen_common::Reader;
        let preds = [
            Predicate::True,
            Predicate::Eq(0, Value::int(5)),
            Predicate::Ne(1, Value::str("y")),
            Predicate::Eq(2, Value::Null),
            Predicate::Lt(0, Value::int(6))
                .and(Predicate::Ge(0, Value::int(1)))
                .and(Predicate::Le(1, Value::str("z")))
                .and(Predicate::Gt(0, Value::int(0))),
        ];
        for p in preds {
            let mut buf = Vec::new();
            p.encode_into(&mut buf);
            let mut r = Reader::new(&buf);
            assert_eq!(Predicate::decode(&mut r).unwrap(), p);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn decode_rejects_pathological_nesting() {
        use graphgen_common::Reader;
        // 9 bytes per level (tag 7 + count 1): deep enough to have blown
        // the decode stack before the depth cap existed.
        let mut buf = Vec::new();
        for _ in 0..50_000 {
            codec::put_u8(&mut buf, 7);
            codec::put_len(&mut buf, 1);
        }
        codec::put_u8(&mut buf, 0);
        let mut r = Reader::new(&buf);
        assert!(Predicate::decode(&mut r).is_err());
    }

    #[test]
    fn and_flattening() {
        let p = Predicate::Eq(0, Value::int(5))
            .and(Predicate::True)
            .and(Predicate::Ne(1, Value::str("y")));
        assert!(p.eval(&row()));
        match &p {
            Predicate::And(ps) => assert_eq!(ps.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }
        assert!(Predicate::True.and(Predicate::True).is_trivial());
    }
}
