//! Schema-aware static analysis of extraction programs.
//!
//! [`check_program`] is the *single* semantic engine of the DSL: it
//! validates a parsed [`Program`] — optionally against a [`CheckCatalog`]
//! describing the relations it will run over — and produces every
//! [`Diagnostic`] it can find plus, when there are no errors, the
//! normalized [`GraphSpec`] extraction consumes. [`fn@crate::analyze`] and
//! [`crate::compile`] delegate here, so the checker and the extractor can
//! never disagree about what a program means.
//!
//! Everything is decided statically: no rows are scanned, no joins run.
//! With a catalog the checker also proves schema-level facts the runtime
//! only discovers mid-extraction (unknown relations, arity and type
//! mismatches, statically-empty joins) and — under the opt-in lint groups
//! — predicts conversion failures (`W103`) and large-output plan shapes
//! (`W105`) from catalog statistics using the §4.2 heuristics.

use crate::analyze::{
    filters_of, find_chain, is_acyclic, var_col, EdgeChain, GraphSpec, NodesView,
};
use crate::ast::{Atom, HeadKind, Program, Rule, Term};
use crate::diag::{Code, Diagnostic, Severity};
use crate::parser::parse;
use graphgen_common::FxHashMap;
use std::fmt;

/// The column types the DSL's constants can be checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// 64-bit integer column.
    Int,
    /// String column.
    Str,
}

impl fmt::Display for ColType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColType::Int => write!(f, "int"),
            ColType::Str => write!(f, "str"),
        }
    }
}

/// What the checker knows about one relation: its columns, and (optionally)
/// the row count and per-column distinct counts that drive the plan lints.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationInfo {
    /// `(name, type)` per column, positional.
    pub columns: Vec<(String, ColType)>,
    /// Total rows, if known.
    pub row_count: Option<u64>,
    /// Distinct values per column, parallel to `columns` (entries may be
    /// unknown).
    pub n_distinct: Vec<Option<u64>>,
}

impl RelationInfo {
    /// Schema-only info (no statistics).
    pub fn new(columns: Vec<(String, ColType)>) -> Self {
        let n = columns.len();
        Self {
            columns,
            row_count: None,
            n_distinct: vec![None; n],
        }
    }

    /// Attach row/distinct statistics.
    pub fn with_stats(mut self, row_count: u64, n_distinct: Vec<Option<u64>>) -> Self {
        self.row_count = Some(row_count);
        self.n_distinct = n_distinct;
        self.n_distinct.resize(self.columns.len(), None);
        self
    }
}

/// The schema (and optional statistics) a program is checked against.
#[derive(Debug, Clone, Default)]
pub struct CheckCatalog {
    relations: FxHashMap<String, RelationInfo>,
}

impl CheckCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a relation.
    pub fn add(&mut self, name: impl Into<String>, info: RelationInfo) {
        self.relations.insert(name.into(), info);
    }

    /// Look up a relation.
    pub fn relation(&self, name: &str) -> Option<&RelationInfo> {
        self.relations.get(name)
    }

    /// All relation names, sorted (for stable help text).
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.relations.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// True if no relations are registered.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Parse the `.ggs` schema-description format, one relation per line:
    ///
    /// ```text
    /// # comments with `#` or `%`
    /// table Author(id: int, name: str) rows=1000 distinct=(1000, 987)
    /// table AuthorPub(aid: int, pid: int)
    /// ```
    ///
    /// `rows=` and `distinct=(…)` are optional; a `?` entry in `distinct`
    /// marks an unknown count.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut cat = Self::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let at = |msg: String| format!("schema line {}: {msg}", lineno + 1);
            if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
                continue;
            }
            let rest = line.strip_prefix("table ").ok_or_else(|| {
                at(format!(
                    "expected `table Name(col: type, …)`, found `{line}`"
                ))
            })?;
            let open = rest
                .find('(')
                .ok_or_else(|| at("missing `(` after table name".into()))?;
            let close = rest
                .find(')')
                .ok_or_else(|| at("missing `)` after column list".into()))?;
            let name = rest[..open].trim();
            if name.is_empty() {
                return Err(at("empty table name".into()));
            }
            let mut columns = Vec::new();
            for col in rest[open + 1..close].split(',') {
                let (cname, ctype) = col
                    .split_once(':')
                    .ok_or_else(|| at(format!("column `{}` needs `name: type`", col.trim())))?;
                let ctype = match ctype.trim() {
                    "int" => ColType::Int,
                    "str" => ColType::Str,
                    other => return Err(at(format!("unknown column type `{other}`"))),
                };
                columns.push((cname.trim().to_string(), ctype));
            }
            let mut info = RelationInfo::new(columns);
            let mut tail = rest[close + 1..].trim();
            while !tail.is_empty() {
                if let Some(r) = tail.strip_prefix("rows=") {
                    let end = r.find(char::is_whitespace).unwrap_or(r.len());
                    info.row_count = Some(
                        r[..end]
                            .parse()
                            .map_err(|e| at(format!("bad rows count: {e}")))?,
                    );
                    tail = r[end..].trim_start();
                } else if let Some(r) = tail.strip_prefix("distinct=(") {
                    let end = r
                        .find(')')
                        .ok_or_else(|| at("missing `)` in distinct=(…)".into()))?;
                    let mut distinct = Vec::new();
                    for d in r[..end].split(',') {
                        let d = d.trim();
                        distinct.push(if d == "?" {
                            None
                        } else {
                            Some(
                                d.parse()
                                    .map_err(|e| at(format!("bad distinct count: {e}")))?,
                            )
                        });
                    }
                    if distinct.len() != info.columns.len() {
                        return Err(at(format!(
                            "distinct=(…) has {} entries for {} columns",
                            distinct.len(),
                            info.columns.len()
                        )));
                    }
                    info.n_distinct = distinct;
                    tail = r[end + 1..].trim_start();
                } else {
                    return Err(at(format!("unexpected trailing `{tail}`")));
                }
            }
            cat.add(name, info);
        }
        Ok(cat)
    }
}

/// What the checker should look for beyond the always-on validity checks.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Enable `W103` (predict `ConvertError::Asymmetric`/`MultiLayer`).
    pub lint_conversion: bool,
    /// Enable `W105` (large-output join classification; needs statistics).
    pub lint_plan: bool,
    /// The §4.2 large-output factor (the paper's constant 2.0).
    pub large_output_factor: f64,
}

impl Default for CheckOptions {
    fn default() -> Self {
        Self {
            lint_conversion: false,
            lint_plan: false,
            large_output_factor: 2.0,
        }
    }
}

impl CheckOptions {
    /// Enable a lint group by name (`conversion`, `plan`, or `all`).
    pub fn enable_lint(&mut self, group: &str) -> Result<(), String> {
        match group {
            "conversion" => self.lint_conversion = true,
            "plan" => self.lint_plan = true,
            "all" => {
                self.lint_conversion = true;
                self.lint_plan = true;
            }
            other => {
                return Err(format!(
                    "unknown lint group `{other}` (try conversion, plan, all)"
                ))
            }
        }
        Ok(())
    }
}

/// Everything one check pass produced.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// The normalized extraction spec — present iff there are no errors.
    pub spec: Option<GraphSpec>,
    /// All findings, in source order.
    pub diagnostics: Vec<Diagnostic>,
}

impl CheckReport {
    /// True if any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// True if any diagnostic is a warning.
    pub fn has_warnings(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Warning)
    }

    /// The first error, if any.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
    }
}

/// Parse and check in one call; parse failures become the report's single
/// diagnostic.
pub fn check_source(
    text: &str,
    catalog: Option<&CheckCatalog>,
    opts: &CheckOptions,
) -> CheckReport {
    match parse(text) {
        Ok(program) => check_program(&program, catalog, opts),
        Err(e) => CheckReport {
            spec: None,
            diagnostics: vec![e.into_diagnostic()],
        },
    }
}

/// Validate `program`, collecting every diagnostic. With `catalog`, also
/// run the schema- and statistics-aware checks. Returns the normalized
/// [`GraphSpec`] iff no errors were found.
pub fn check_program(
    program: &Program,
    catalog: Option<&CheckCatalog>,
    opts: &CheckOptions,
) -> CheckReport {
    let mut cx = Checker {
        catalog,
        opts,
        diags: Vec::new(),
    };
    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    let mut seen_rules: Vec<&Rule> = Vec::new();
    for rule in &program.rules {
        if seen_rules.contains(&rule) {
            cx.push(
                Diagnostic::new(
                    Code::DuplicateRule,
                    rule.head_span,
                    format!(
                        "duplicate rule: this `{}` rule repeats an earlier rule verbatim",
                        rule.head.keyword()
                    ),
                )
                .with_help("delete the duplicate; repeated rules add no nodes or edges"),
            );
            continue;
        }
        seen_rules.push(rule);
        if !cx.check_recursion(rule) {
            continue;
        }
        for atom in &rule.body {
            cx.check_atom_against_catalog(atom);
        }
        cx.check_join_types(rule);
        cx.check_singletons(rule);
        match rule.head {
            HeadKind::Nodes => {
                if let Some(view) = cx.check_nodes(rule) {
                    nodes.push(view);
                }
            }
            HeadKind::Edges => {
                if let Some(chain) = cx.check_edges(rule) {
                    cx.lint_chain(rule, &chain);
                    edges.push(chain);
                }
            }
        }
    }
    for (kind, have) in [
        (
            HeadKind::Nodes,
            program.rules.iter().any(|r| r.head == HeadKind::Nodes),
        ),
        (
            HeadKind::Edges,
            program.rules.iter().any(|r| r.head == HeadKind::Edges),
        ),
    ] {
        if !have {
            cx.push(Diagnostic::new(
                Code::IncompleteProgram,
                crate::span::Span::default(),
                format!(
                    "a graph specification needs at least one {} statement",
                    kind.keyword()
                ),
            ));
        }
    }
    let has_errors = cx.diags.iter().any(|d| d.severity == Severity::Error);
    CheckReport {
        spec: (!has_errors).then_some(GraphSpec { nodes, edges }),
        diagnostics: cx.diags,
    }
}

struct Checker<'a> {
    catalog: Option<&'a CheckCatalog>,
    opts: &'a CheckOptions,
    diags: Vec<Diagnostic>,
}

impl Checker<'_> {
    fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// `E008`: body atoms may not reference the special heads. Returns
    /// false if the rule is recursive (further checks are skipped).
    fn check_recursion(&mut self, rule: &Rule) -> bool {
        for atom in &rule.body {
            if atom.relation == "Nodes" || atom.relation == "Edges" {
                self.push(
                    Diagnostic::new(
                        Code::RecursiveRule,
                        atom.relation_span,
                        "recursive rules are not supported",
                    )
                    .with_help(format!(
                        "`{}` may not appear in a rule body; only base relations can",
                        atom.relation
                    )),
                );
                return false;
            }
        }
        true
    }

    /// `E001`/`E003`/`E002`: relation existence, arity, constant types.
    fn check_atom_against_catalog(&mut self, atom: &Atom) {
        let Some(cat) = self.catalog else { return };
        let Some(info) = cat.relation(&atom.relation) else {
            let mut d = Diagnostic::new(
                Code::UnknownRelation,
                atom.relation_span,
                format!("unknown relation `{}`", atom.relation),
            );
            d = match closest(&atom.relation, cat.names()) {
                Some(similar) => d.with_help(format!("did you mean `{similar}`?")),
                None => d.with_help(format!("available relations: {}", cat.names().join(", "))),
            };
            self.push(d);
            return;
        };
        if atom.args.len() != info.columns.len() {
            let span = atom
                .relation_span
                .to(atom.arg_span(atom.args.len().saturating_sub(1)));
            self.push(
                Diagnostic::new(
                    Code::ArityMismatch,
                    span,
                    format!(
                        "`{}` has {} column(s) but is used with {} argument(s)",
                        atom.relation,
                        info.columns.len(),
                        atom.args.len()
                    ),
                )
                .with_help(format!(
                    "columns of `{}`: {}",
                    atom.relation,
                    info.columns
                        .iter()
                        .map(|(n, t)| format!("{n}: {t}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )),
            );
            return;
        }
        for (i, term) in atom.args.iter().enumerate() {
            let found = match term {
                Term::Int(_) => ColType::Int,
                Term::Str(_) => ColType::Str,
                _ => continue,
            };
            let (cname, want) = &info.columns[i];
            if found != *want {
                self.push(
                    Diagnostic::new(
                        Code::TypeMismatch,
                        atom.arg_span(i),
                        format!(
                            "constant `{term}` is {found} but column `{cname}` of `{}` is {want}",
                            atom.relation
                        ),
                    )
                    .with_help("this selection can never match a row"),
                );
            }
        }
    }

    /// `W101`: a join variable relating columns of different types can
    /// never match — the rule is statically empty.
    fn check_join_types(&mut self, rule: &Rule) {
        let Some(cat) = self.catalog else { return };
        let mut seen: FxHashMap<&str, (ColType, String)> = FxHashMap::default();
        for atom in &rule.body {
            let Some(info) = cat.relation(&atom.relation) else {
                continue;
            };
            if atom.args.len() != info.columns.len() {
                continue;
            }
            for (i, term) in atom.args.iter().enumerate() {
                let Some(var) = term.as_var() else { continue };
                let (cname, ctype) = &info.columns[i];
                let here = format!("`{}.{}` ({})", atom.relation, cname, ctype);
                match seen.get(var) {
                    None => {
                        seen.insert(var, (*ctype, here));
                    }
                    Some((prev, first)) if prev != ctype => {
                        let d = Diagnostic::new(
                            Code::UnsatisfiableFilter,
                            atom.arg_span(i),
                            format!("variable `{var}` joins {here} with {first}; the join can never match"),
                        )
                        .with_help("this rule always produces an empty result");
                        self.push(d);
                    }
                    Some(_) => {}
                }
            }
        }
    }

    /// `W102`: a body variable used exactly once constrains nothing.
    fn check_singletons(&mut self, rule: &Rule) {
        let mut counts: FxHashMap<&str, usize> = FxHashMap::default();
        for t in rule
            .head_args
            .iter()
            .chain(rule.body.iter().flat_map(|a| a.args.iter()))
        {
            if let Some(v) = t.as_var() {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        let head_vars: Vec<&str> = rule.head_args.iter().filter_map(Term::as_var).collect();
        for atom in &rule.body {
            for (i, t) in atom.args.iter().enumerate() {
                if let Some(v) = t.as_var() {
                    if counts.get(v) == Some(&1) && !head_vars.contains(&v) {
                        self.push(
                            Diagnostic::new(
                                Code::SingletonVariable,
                                atom.arg_span(i),
                                format!("variable `{v}` is used only once"),
                            )
                            .with_help("it constrains nothing; write `_` to ignore the column"),
                        );
                    }
                }
            }
        }
    }

    /// `E005`/`E004`/`E010`: Nodes-head structure. Returns the normalized
    /// view when valid.
    fn check_nodes(&mut self, rule: &Rule) -> Option<NodesView> {
        let mut ok = true;
        if rule.body.len() != 1 {
            self.push(
                Diagnostic::new(
                    Code::InvalidHead,
                    rule.head_span,
                    format!(
                        "Nodes rules must have a single body atom (found {})",
                        rule.body.len()
                    ),
                )
                .with_help("split multi-relation node sets into one Nodes rule per relation"),
            );
            return None;
        }
        let atom = &rule.body[0];
        let id_var = match rule.head_args.first().and_then(Term::as_var) {
            Some(v) => Some(v),
            None => {
                self.push(Diagnostic::new(
                    Code::InvalidHead,
                    rule.head_arg_span(0),
                    "first Nodes attribute must be a variable (the node id)",
                ));
                ok = false;
                None
            }
        };
        let id_col = id_var.and_then(|v| {
            let col = var_col(atom, v);
            if col.is_none() {
                self.push(Diagnostic::new(
                    Code::UnboundHeadVariable,
                    rule.head_arg_span(0),
                    format!("node id variable `{v}` not bound in the body"),
                ));
                ok = false;
            }
            col
        });
        let mut prop_cols = Vec::new();
        let mut seen_props: Vec<&str> = Vec::new();
        for (i, t) in rule.head_args.iter().enumerate().skip(1) {
            let Some(v) = t.as_var() else {
                self.push(Diagnostic::new(
                    Code::InvalidHead,
                    rule.head_arg_span(i),
                    "Nodes property attributes must be variables",
                ));
                ok = false;
                continue;
            };
            if seen_props.contains(&v) {
                self.push(
                    Diagnostic::new(
                        Code::DuplicateProperty,
                        rule.head_arg_span(i),
                        format!("duplicate property `{v}` in Nodes head"),
                    )
                    .with_help("each head attribute becomes one vertex property; repeating a name silently overwrote the earlier one before this was checked"),
                );
                ok = false;
                continue;
            }
            seen_props.push(v);
            match var_col(atom, v) {
                Some(col) => prop_cols.push((v.to_string(), col)),
                None => {
                    self.push(Diagnostic::new(
                        Code::UnboundHeadVariable,
                        rule.head_arg_span(i),
                        format!("property variable `{v}` not bound in the body"),
                    ));
                    ok = false;
                }
            }
        }
        if !ok {
            return None;
        }
        Some(NodesView {
            relation: atom.relation.clone(),
            id_col: id_col?,
            prop_cols,
            filters: filters_of(atom),
        })
    }

    /// `E005`/`E004`/`E006`/`E007` (+ `W101` self-loops): Edges-head
    /// structure and chain normalization.
    fn check_edges(&mut self, rule: &Rule) -> Option<EdgeChain> {
        if rule.head_args.len() < 2 {
            self.push(Diagnostic::new(
                Code::InvalidHead,
                rule.head_span,
                "Edges rules need at least two head attributes (ID1, ID2)",
            ));
            return None;
        }
        let mut ids = [None, None];
        for (i, slot) in ids.iter_mut().enumerate() {
            match rule.head_args[i].as_var() {
                Some(v) => *slot = Some(v),
                None => {
                    self.push(Diagnostic::new(
                        Code::InvalidHead,
                        rule.head_arg_span(i),
                        format!(
                            "{} Edges attribute must be a variable (ID{})",
                            if i == 0 { "first" } else { "second" },
                            i + 1
                        ),
                    ));
                }
            }
        }
        let mut bound = true;
        for (i, t) in rule.head_args.iter().enumerate() {
            let Some(v) = t.as_var() else { continue };
            if !rule.body.iter().any(|a| var_col(a, v).is_some()) {
                self.push(Diagnostic::new(
                    Code::UnboundHeadVariable,
                    rule.head_arg_span(i),
                    format!("head variable `{v}` not bound in the body"),
                ));
                if i < 2 {
                    bound = false;
                }
            }
        }
        let (Some(id1), Some(id2)) = (ids[0], ids[1]) else {
            return None;
        };
        if id1 == id2 {
            self.push(
                Diagnostic::new(
                    Code::UnsatisfiableFilter,
                    rule.head_arg_span(1),
                    format!("both edge endpoints are `{id1}`; every edge is a self-loop"),
                )
                .with_help("use two distinct variables for ID1 and ID2"),
            );
        }
        if !is_acyclic(&rule.body) {
            self.push(
                Diagnostic::new(
                    Code::CyclicBody,
                    rule.head_span,
                    "Edges body is cyclic; only acyclic conjunctive queries are supported (Case 1, §3.3)",
                )
                .with_help("the GYO reduction of the body's hypergraph does not empty"),
            );
            return None;
        }
        if !bound {
            return None;
        }
        match find_chain(&rule.body, id1, id2) {
            Some(steps) => Some(EdgeChain { steps }),
            None => {
                self.push(
                    Diagnostic::new(
                        Code::NonChainBody,
                        rule.head_span,
                        "Edges body cannot be ordered into a join chain from ID1 to ID2; \
                         non-chain acyclic queries fall under Case 2 and are not supported",
                    )
                    .with_help(
                        "every body atom must share a join variable with its neighbors so the \
                         body forms a path ID1 → … → ID2",
                    ),
                );
                None
            }
        }
    }

    /// `W103`/`W105`: conversion- and plan-shape lints on a valid chain.
    fn lint_chain(&mut self, rule: &Rule, chain: &EdgeChain) {
        if self.opts.lint_conversion && !chain_is_palindromic(&chain.steps) {
            self.push(
                Diagnostic::new(
                    Code::Dedup2Infeasible,
                    rule.head_span,
                    "this Edges chain is not symmetric; DEDUP-2 conversion will fail with `Asymmetric`",
                )
                .with_help(
                    "only palindromic chains (R1 ⋈ … ⋈ R1 reversed) produce the symmetric \
                     co-occurrence shape DEDUP-2 needs; directed chains still support \
                     C-DUP, EXP and DEDUP-1",
                ),
            );
        }
        // Plan-shape lints delegate to the single cost engine
        // ([`crate::cost`]) — the same enumeration the extraction planner
        // runs, so checker and extractor can never disagree about which
        // joins are postponed. Without full statistics the engine returns
        // `None` and both lints stay silent.
        let cost = self.catalog.and_then(|cat| {
            crate::cost::estimate_chain(cat, &chain.steps, self.opts.large_output_factor)
        });
        let Some(cost) = cost else { return };
        if self.opts.lint_plan {
            for est in cost.joins.iter().filter(|j| j.cut) {
                let message = if est.estimated_output > est.threshold {
                    format!(
                        "join `{} ⋈ {}` is large-output: |L|·|R|/d = {:.0} > {:.0} = factor·(|L|+|R|)",
                        est.left, est.right, est.estimated_output, est.threshold
                    )
                } else {
                    format!(
                        "join `{} ⋈ {}` is postponed by the min-cost plan: |L|·|R|/d = {:.0} ≤ {:.0}, \
                         but keeping it in a segment compounds downstream estimates",
                        est.left, est.right, est.estimated_output, est.threshold
                    )
                };
                self.push(
                    Diagnostic::new(Code::LargeOutputSegment, rule.head_span, message).with_help(
                        "the planner will postpone this join into a virtual-node layer (§4.2); \
                         this is usually what you want, but it changes the output representation",
                    ),
                );
            }
        }
        if self.opts.lint_conversion && cost.virtual_layers() >= 2 {
            self.push(
                Diagnostic::new(
                    Code::Dedup2Infeasible,
                    rule.head_span,
                    format!(
                        "catalog statistics predict {} virtual-node layers; DEDUP-1/DEDUP-2 \
                         conversion will fail with `MultiLayer`",
                        cost.virtual_layers()
                    ),
                )
                .with_help("multi-layer condensed graphs only support C-DUP, EXP and BITMAP"),
            );
        }
    }
}

/// True when the chain reads the same forwards and backwards (with join
/// directions flipped) — the shape whose extraction output is symmetric.
fn chain_is_palindromic(steps: &[crate::analyze::ChainAtom]) -> bool {
    let n = steps.len();
    (0..n).all(|i| {
        let (a, b) = (&steps[i], &steps[n - 1 - i]);
        a.relation == b.relation
            && a.in_col == b.out_col
            && a.out_col == b.in_col
            && a.filters == b.filters
    })
}

/// The closest candidate within a small edit distance, for `did you mean`.
fn closest<'a>(name: &str, candidates: Vec<&'a str>) -> Option<&'a str> {
    let budget = 1 + name.len() / 4;
    candidates
        .into_iter()
        .filter_map(|c| {
            let d = edit_distance(name, c);
            (d <= budget).then_some((d, c))
        })
        .min_by_key(|(d, _)| *d)
        .map(|(_, c)| c)
}

fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q1: &str = "Nodes(ID, Name) :- Author(ID, Name).\n\
                      Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).";

    fn dblp_catalog() -> CheckCatalog {
        CheckCatalog::parse(
            "table Author(id: int, name: str) rows=100 distinct=(100, 100)\n\
             table AuthorPub(aid: int, pid: int) rows=1000 distinct=(100, 100)\n",
        )
        .unwrap()
    }

    fn codes(report: &CheckReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code.code()).collect()
    }

    #[test]
    fn clean_program_checks_clean() {
        let r = check_source(Q1, Some(&dblp_catalog()), &CheckOptions::default());
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.spec.unwrap().edges[0].steps.len(), 2);
    }

    #[test]
    fn unknown_relation_with_suggestion() {
        let src = "Nodes(ID, Name) :- Author(ID, Name).\n\
                   Edges(A, B) :- AuthorPubb(A, P), AuthorPub(B, P).";
        let r = check_source(src, Some(&dblp_catalog()), &CheckOptions::default());
        assert_eq!(codes(&r), vec!["E001"]);
        let d = &r.diagnostics[0];
        assert_eq!((d.span.line, d.span.col, d.span.len), (2, 16, 10));
        assert_eq!(d.help.as_deref(), Some("did you mean `AuthorPub`?"));
        assert!(r.spec.is_none());
    }

    #[test]
    fn arity_and_type_mismatches() {
        let src = "Nodes(ID) :- Author(ID, 7).\n\
                   Edges(A, B) :- AuthorPub(A, P, 7), AuthorPub(B, P).";
        let r = check_source(src, Some(&dblp_catalog()), &CheckOptions::default());
        assert_eq!(codes(&r), vec!["E002", "E003"]);
        assert!(
            r.diagnostics[0].message.contains("`7` is int"),
            "{:?}",
            r.diagnostics
        );
        assert!(r.diagnostics[1].message.contains("2 column(s)"));
    }

    #[test]
    fn join_type_conflict_is_unsatisfiable() {
        let cat = CheckCatalog::parse(
            "table R(a: int, b: str)\ntable S(c: str, d: int)\ntable N(id: int)",
        )
        .unwrap();
        let src = "Nodes(X) :- N(X).\nEdges(A, B) :- R(A, K), S(K, B).";
        let r = check_source(src, Some(&cat), &CheckOptions::default());
        // K is R.b (str) then... S.c is str: fine. Use a conflicting one:
        assert!(codes(&r).is_empty(), "{:?}", r.diagnostics);
        let src = "Nodes(X) :- N(X).\nEdges(A, B) :- R(A, K), S(B, K).";
        let r = check_source(src, Some(&cat), &CheckOptions::default());
        assert_eq!(codes(&r), vec!["W101"]);
        assert!(r.spec.is_some(), "warnings don't block the spec");
    }

    #[test]
    fn unbound_and_invalid_heads() {
        let r = check_source(
            "Nodes(X, Y) :- R(X).\nEdges(A, 3) :- R(A).",
            None,
            &CheckOptions::default(),
        );
        assert_eq!(codes(&r), vec!["E004", "E005"]);
    }

    #[test]
    fn duplicate_property_and_rule() {
        let src = "Nodes(ID, Name, Name) :- Author(ID, Name).\n\
                   Edges(A, B) :- AuthorPub(A, P), AuthorPub(B, P).\n\
                   Edges(A, B) :- AuthorPub(A, P), AuthorPub(B, P).";
        let r = check_source(src, None, &CheckOptions::default());
        assert_eq!(codes(&r), vec!["E010", "E011"]);
        let dup = &r.diagnostics[0];
        assert_eq!((dup.span.line, dup.span.col), (1, 17));
    }

    #[test]
    fn self_loop_endpoints_warn() {
        let r = check_source(
            "Nodes(X) :- R(X, _).\nEdges(A, A) :- R(A, _).",
            None,
            &CheckOptions::default(),
        );
        assert_eq!(codes(&r), vec!["W101"]);
    }

    #[test]
    fn singleton_variable_warns() {
        let r = check_source(
            "Nodes(X) :- R(X, Unused).\nEdges(A, B) :- R(A, P), R(B, P).",
            None,
            &CheckOptions::default(),
        );
        assert_eq!(codes(&r), vec!["W102"]);
        assert!(r.diagnostics[0].message.contains("`Unused`"));
    }

    #[test]
    fn cyclic_and_nonchain_bodies() {
        let r = check_source(
            "Nodes(X) :- R(X, _).\nEdges(A, B) :- R(A, B), R(B, C), R(C, A).",
            None,
            &CheckOptions::default(),
        );
        assert_eq!(codes(&r), vec!["E006"]);
        // Disconnected acyclic body: admits no ID1→ID2 chain ordering.
        let r2 = check_source(
            "Nodes(X) :- R(X, _).\nEdges(A, B) :- R(A, _), R(B, _).",
            None,
            &CheckOptions::default(),
        );
        assert!(codes(&r2).contains(&"E007"), "{:?}", r2.diagnostics);
    }

    #[test]
    fn conversion_lint_flags_asymmetric_chain() {
        let src = "Nodes(ID, Name) :- Instructor(ID, Name).\n\
                   Nodes(ID, Name) :- Student(ID, Name).\n\
                   Edges(ID1, ID2) :- TaughtCourse(ID1, C), TookCourse(ID2, C).";
        let mut opts = CheckOptions::default();
        assert!(check_source(src, None, &opts).diagnostics.is_empty());
        opts.enable_lint("conversion").unwrap();
        let r = check_source(src, None, &opts);
        assert_eq!(codes(&r), vec!["W103"]);
        // Q1's palindromic chain stays clean under the same lint.
        assert!(check_source(Q1, None, &opts).diagnostics.is_empty());
    }

    #[test]
    fn plan_lint_flags_large_output_joins() {
        // 1000 rows, 10 distinct pubs: 1000*1000/10 = 100k > 2*2000.
        let cat = CheckCatalog::parse(
            "table Author(id: int, name: str) rows=100 distinct=(100, 100)\n\
             table AuthorPub(aid: int, pid: int) rows=1000 distinct=(100, 10)\n",
        )
        .unwrap();
        let mut opts = CheckOptions::default();
        opts.enable_lint("plan").unwrap();
        let r = check_source(Q1, Some(&cat), &opts);
        assert_eq!(codes(&r), vec!["W105"]);
        // Without stats the lint stays silent.
        let bare = CheckCatalog::parse(
            "table Author(id: int, name: str)\ntable AuthorPub(aid: int, pid: int)",
        )
        .unwrap();
        assert!(check_source(Q1, Some(&bare), &opts).diagnostics.is_empty());
    }

    #[test]
    fn multilayer_prediction_needs_two_large_joins() {
        let cat = CheckCatalog::parse(
            "table N(id: int) rows=10 distinct=(10)\n\
             table R(a: int, b: int) rows=1000 distinct=(5, 5)\n\
             table S(a: int, b: int) rows=1000 distinct=(5, 5)\n\
             table T(a: int, b: int) rows=1000 distinct=(5, 5)\n",
        )
        .unwrap();
        let src = "Nodes(X) :- N(X).\nEdges(A, B) :- R(A, K), S(K, L), T(L, B).";
        let mut opts = CheckOptions::default();
        opts.enable_lint("all").unwrap();
        let r = check_source(src, Some(&cat), &opts);
        let cs = codes(&r);
        assert_eq!(cs.iter().filter(|c| **c == "W105").count(), 2);
        assert_eq!(cs.iter().filter(|c| **c == "W103").count(), 2); // asymmetric + multilayer
    }

    #[test]
    fn incomplete_program() {
        let r = check_source("Nodes(X) :- R(X).", None, &CheckOptions::default());
        assert_eq!(codes(&r), vec!["E009"]);
        assert!(r.diagnostics[0].span.is_synthetic());
    }

    #[test]
    fn parse_errors_become_reports() {
        let r = check_source("Nodes(", None, &CheckOptions::default());
        assert_eq!(codes(&r), vec!["E000"]);
    }

    #[test]
    fn ggs_parser_rejects_malformed_lines() {
        assert!(CheckCatalog::parse("tabel R(a: int)").is_err());
        assert!(CheckCatalog::parse("table R(a int)").is_err());
        assert!(CheckCatalog::parse("table R(a: float)").is_err());
        assert!(CheckCatalog::parse("table R(a: int) distinct=(1, 2)").is_err());
        assert!(CheckCatalog::parse("table R(a: int) shards=3").is_err());
        let cat = CheckCatalog::parse(
            "# comment\n% comment\n\ntable R(a: int, b: str) rows=7 distinct=(3, ?)",
        )
        .unwrap();
        let r = cat.relation("R").unwrap();
        assert_eq!(r.row_count, Some(7));
        assert_eq!(r.n_distinct, vec![Some(3), None]);
    }

    #[test]
    fn edit_distance_suggestions() {
        assert_eq!(
            closest("AuthorPubb", vec!["Author", "AuthorPub"]),
            Some("AuthorPub")
        );
        assert_eq!(closest("Zzz", vec!["Author", "AuthorPub"]), None);
    }
}
