//! Assembling condensed graphs.
//!
//! The extraction layer (and the synthetic generators, and the tests) build
//! condensed graphs edge-by-edge through a [`CondensedBuilder`], which then
//! produces an immutable-shaped [`CondensedGraph`] with sorted, deduplicated
//! adjacency lists (the paper keeps neighbor lists sorted — §5.2.2).

use crate::cdup::CondensedGraph;
use crate::ids::{Adj, RealId, VirtId};

/// Incrementally builds a [`CondensedGraph`].
#[derive(Debug, Clone)]
pub struct CondensedBuilder {
    real_out: Vec<Vec<Adj>>,
    virt_out: Vec<Vec<Adj>>,
}

impl CondensedBuilder {
    /// Start a builder with `n_real` real nodes and no virtual nodes.
    pub fn new(n_real: usize) -> Self {
        Self {
            real_out: vec![Vec::new(); n_real],
            virt_out: Vec::new(),
        }
    }

    /// Number of real nodes.
    pub fn num_real(&self) -> usize {
        self.real_out.len()
    }

    /// Number of virtual nodes created so far.
    pub fn num_virtual(&self) -> usize {
        self.virt_out.len()
    }

    /// Append a fresh real node, returning its id.
    pub fn add_real(&mut self) -> RealId {
        self.real_out.push(Vec::new());
        RealId(self.real_out.len() as u32 - 1)
    }

    /// Create a fresh virtual node, returning its id.
    pub fn add_virtual(&mut self) -> VirtId {
        self.virt_out.push(Vec::new());
        VirtId(self.virt_out.len() as u32 - 1)
    }

    /// Create `n` fresh virtual nodes, returning the id of the first.
    pub fn add_virtuals(&mut self, n: usize) -> VirtId {
        let first = self.virt_out.len() as u32;
        self.virt_out.resize(self.virt_out.len() + n, Vec::new());
        VirtId(first)
    }

    /// Edge from a real source to a virtual node (`u_s → V`).
    pub fn real_to_virtual(&mut self, u: RealId, v: VirtId) {
        self.real_out[u.0 as usize].push(Adj::virt(v));
    }

    /// Edge from a virtual node to a real target (`V → u_t`).
    pub fn virtual_to_real(&mut self, v: VirtId, u: RealId) {
        self.virt_out[v.0 as usize].push(Adj::real(u));
    }

    /// Edge between two virtual nodes (`V → W`, multi-layer graphs).
    pub fn virtual_to_virtual(&mut self, v: VirtId, w: VirtId) {
        self.virt_out[v.0 as usize].push(Adj::virt(w));
    }

    /// Direct real→real edge (`u_s → v_t`).
    pub fn direct(&mut self, u: RealId, v: RealId) {
        self.real_out[u.0 as usize].push(Adj::real(v));
    }

    /// Convenience: a "clique" virtual node connecting every member to every
    /// other member (the shape produced by co-occurrence extraction): each
    /// member gets `m → V` and `V → m`.
    pub fn clique(&mut self, members: &[RealId]) -> VirtId {
        let v = self.add_virtual();
        for &m in members {
            self.real_to_virtual(m, v);
            self.virtual_to_real(v, m);
        }
        v
    }

    /// Finish: sort + dedup all adjacency lists and wrap in a
    /// [`CondensedGraph`]. Panics (debug) if the virtual graph has a cycle —
    /// extraction queries are acyclic so condensed graphs are DAGs.
    pub fn build(mut self) -> CondensedGraph {
        for list in self.real_out.iter_mut().chain(self.virt_out.iter_mut()) {
            list.sort_unstable();
            list.dedup();
            list.shrink_to_fit();
        }
        let g = CondensedGraph::from_parts(self.real_out, self.virt_out);
        debug_assert!(
            crate::validate::validate_virtual_dag(&g).is_ok(),
            "condensed graph has a virtual-node cycle"
        );
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::GraphRep;

    #[test]
    fn clique_builder_produces_cooccurrence_shape() {
        let mut b = CondensedBuilder::new(3);
        b.clique(&[RealId(0), RealId(1), RealId(2)]);
        let g = b.build();
        assert_eq!(g.num_virtual(), 1);
        let mut n0 = g.neighbors(RealId(0));
        n0.sort();
        assert_eq!(n0, vec![RealId(1), RealId(2)]);
    }

    #[test]
    fn duplicate_edges_are_collapsed() {
        let mut b = CondensedBuilder::new(2);
        let v = b.add_virtual();
        b.real_to_virtual(RealId(0), v);
        b.real_to_virtual(RealId(0), v);
        b.virtual_to_real(v, RealId(1));
        let g = b.build();
        assert_eq!(g.stored_edge_count(), 2);
    }

    #[test]
    fn add_real_extends_id_space() {
        let mut b = CondensedBuilder::new(1);
        let r = b.add_real();
        assert_eq!(r, RealId(1));
        assert_eq!(b.num_real(), 2);
    }

    #[test]
    fn add_virtuals_batch() {
        let mut b = CondensedBuilder::new(0);
        let first = b.add_virtuals(5);
        assert_eq!(first, VirtId(0));
        assert_eq!(b.num_virtual(), 5);
        let next = b.add_virtual();
        assert_eq!(next, VirtId(5));
    }
}
