//! `graphgen-datagen` — synthetic datasets (Appendix C + §3 substitutions).
//!
//! The paper evaluates on DBLP, IMDB, TPCH, and a UNIV sample, plus several
//! synthetic graph families. We cannot ship those datasets, so this crate
//! generates **schema-faithful synthetic instances** (same tables and
//! columns as the paper's Fig. 15, with co-occurrence group sizes matched
//! to the constants the paper reports — e.g. DBLP's ~2 authors/publication,
//! IMDB's ~10 actors/movie) and re-implements the paper's condensed-graph
//! generator:
//!
//! * [`relational`] — DBLP-, IMDB-, TPCH-, UNIV-shaped databases at any
//!   scale (Table 1 / Fig. 15 substitutes).
//! * [`condensed`] — the Appendix C.1 generator: random virtual-node sizes
//!   from a normal distribution, split/merge, preferential attachment
//!   (small datasets of Table 2 / Fig. 10-13, and the S/N series of
//!   Tables 4-5).
//! * [`large`] — the Appendix C.2 generators: single-layer and multi-layer
//!   ("Layered") databases with controlled join selectivities (Tables 3/6).
//! * [`mutations`] — seeded random insert/delete batches against any of
//!   the above, for the incremental-extraction oracle and benchmarks.

pub mod condensed;
pub mod large;
pub mod mutations;
pub mod relational;

pub use condensed::{synthetic_condensed, CondensedGenConfig};
pub use large::{layered_database, single_layer_database, LayeredConfig, SingleLayerConfig};
pub use mutations::{random_mutation, MutationConfig};
pub use relational::{
    dblp_like, imdb_like, tpch_like, univ, DblpConfig, ImdbConfig, TpchConfig, UnivConfig,
};
