//! Morsel-driven parallelism helpers (std scoped threads, no external deps).
//!
//! The extraction hot paths — table scans, hash-join build and probe,
//! DISTINCT, the dedup preprocessing scan — all follow the same two shapes:
//!
//! * **morsels**: split `0..n` into contiguous ranges, process each range on
//!   its own scoped thread, and merge the per-morsel outputs *in morsel
//!   order*, so the merged result is byte-identical to a serial run;
//! * **partitions**: run one thread per hash partition, each producing the
//!   output for the keys it owns.
//!
//! Centralizing the pattern keeps every parallel operator deterministic and
//! keeps thread management out of the operator code itself.

use std::ops::Range;

/// Below this many items a parallel fan-out costs more in thread spawns than
/// it saves; [`effective_threads`] degrades to serial under it.
pub const MIN_PARALLEL_ITEMS: usize = 1024;

/// Hard ceiling on worker threads, so an absurd request (e.g. a typo'd
/// `GRAPHGEN_THREADS`) cannot exhaust OS thread limits and abort in
/// `scope.spawn`.
pub const MAX_THREADS: usize = 256;

/// Clamp a requested thread count for a workload of `items` units: serial
/// for tiny inputs, at least [`MIN_PARALLEL_ITEMS`] of work per thread,
/// never more than [`MAX_THREADS`], never zero.
pub fn effective_threads(threads: usize, items: usize) -> usize {
    if items < MIN_PARALLEL_ITEMS {
        1
    } else {
        threads
            .min(items / MIN_PARALLEL_ITEMS)
            .clamp(1, MAX_THREADS)
    }
}

/// Split `0..n` into at most `parts` contiguous near-equal ranges (the last
/// may be shorter). Always returns at least one range, so callers can rely
/// on `morsels(0, p)` yielding the single empty range `0..0`.
pub fn morsels(n: usize, parts: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return std::iter::once(0..0).collect();
    }
    let chunk = n.div_ceil(parts.clamp(1, n));
    (0..n)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(n))
        .collect()
}

/// Map `f` over the morsels of `0..n` on scoped threads, returning the
/// per-morsel outputs in morsel order. With `threads <= 1` this is a single
/// serial call; the output sequence is identical either way, which is what
/// lets parallel operators promise byte-identical results.
pub fn map_morsels<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    if threads <= 1 || n == 0 {
        return vec![f(0..n)];
    }
    let ranges = morsels(n, threads);
    // Worker threads inherit the caller's allocation-region label so the
    // counting allocator attributes their allocations to the operator that
    // fanned out (thread-locals do not propagate on their own).
    let region = crate::region::current();
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                scope.spawn(move || {
                    let _region = crate::region::enter(region);
                    f(r)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("morsel worker panicked"))
            .collect()
    })
}

/// Morsel-parallel scatter of `0..n` into hash partitions: maps each item
/// `i` through `f(i) -> (partition, payload)` and returns per-morsel bucket
/// sets `out[morsel][partition]`. Iterating morsels in order within one
/// partition yields payloads in ascending item order — the invariant the
/// deterministic partitioned operators (join build, DISTINCT) rely on, so
/// it lives here rather than being re-derived at each call site.
pub fn scatter_partitions<T, F>(n: usize, parts: usize, f: F) -> Vec<Vec<Vec<T>>>
where
    T: Send,
    F: Fn(usize) -> (usize, T) + Sync,
{
    map_morsels(n, parts, |range| {
        let mut local: Vec<Vec<T>> = (0..parts).map(|_| Vec::new()).collect();
        for i in range {
            let (p, payload) = f(i);
            local[p].push(payload);
        }
        local
    })
}

/// Run `f(p)` for every partition `p in 0..parts` on scoped threads,
/// returning the outputs in partition order. `parts <= 1` runs serially.
pub fn map_partitions<T, F>(parts: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if parts <= 1 {
        return vec![f(0)];
    }
    // See map_morsels: workers inherit the caller's region label.
    let region = crate::region::current();
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..parts)
            .map(|p| {
                scope.spawn(move || {
                    let _region = crate::region::enter(region);
                    f(p)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("partition worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsels_cover_range_in_order() {
        for n in [0usize, 1, 7, 1000, 1025] {
            for parts in [1usize, 2, 3, 8, 2000] {
                let ms = morsels(n, parts);
                let mut next = 0;
                for m in &ms {
                    assert_eq!(m.start, next);
                    next = m.end;
                }
                assert_eq!(next, n);
                assert!(ms.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn map_morsels_matches_serial() {
        let n = 10_000usize;
        let serial: usize = (0..n).sum();
        for threads in [1, 2, 8] {
            let parts = map_morsels(n, threads, |r| r.sum::<usize>());
            assert_eq!(parts.into_iter().sum::<usize>(), serial);
        }
    }

    #[test]
    fn map_morsels_preserves_order() {
        let out = map_morsels(5000, 4, |r| r.collect::<Vec<_>>()).concat();
        assert_eq!(out, (0..5000).collect::<Vec<_>>());
    }

    #[test]
    fn map_partitions_in_order() {
        assert_eq!(map_partitions(4, |p| p * 10), vec![0, 10, 20, 30]);
        assert_eq!(map_partitions(0, |p| p), vec![0]);
    }

    #[test]
    fn scatter_partitions_preserves_item_order_per_partition() {
        let n = 5000usize;
        let parts = 4;
        let buckets = scatter_partitions(n, parts, |i| (i % parts, i));
        for p in 0..parts {
            let items: Vec<usize> = buckets.iter().flat_map(|m| m[p].iter().copied()).collect();
            assert!(items.windows(2).all(|w| w[0] < w[1]), "partition {p}");
            assert_eq!(items, (0..n).filter(|i| i % parts == p).collect::<Vec<_>>());
        }
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(8, 10), 1);
        assert_eq!(effective_threads(8, 100_000), 8);
        assert_eq!(effective_threads(0, 100_000), 1);
        // At least MIN_PARALLEL_ITEMS of work per thread...
        assert_eq!(effective_threads(1 << 20, 2048), 2);
        // ...and never more than MAX_THREADS, however huge the input.
        assert_eq!(effective_threads(1 << 20, 1 << 30), MAX_THREADS);
    }
}
