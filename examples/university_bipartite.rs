//! Heterogeneous bipartite extraction (\[Q3\]): instructors → students who
//! took their courses, with two `Nodes` statements of different entity
//! types (the paper's Fig. 5b).
//!
//! Run with: `cargo run --release --example university_bipartite`

use graphgen::core::{GraphGen, GraphGenConfig};
use graphgen::datagen::{relational::UNIV_BIPARTITE, univ, UnivConfig};
use graphgen::graph::GraphRep;

fn main() {
    let db = univ(UnivConfig {
        students: 300,
        instructors: 12,
        courses: 30,
        avg_courses_per_student: 3.0,
        seed: 4,
    });
    let gg = GraphGen::with_config(
        &db,
        GraphGenConfig::builder()
            .auto_expand_threshold(None)
            .build(),
    );
    let g = gg.extract(UNIV_BIPARTITE).expect("extraction");
    println!(
        "bipartite graph: {} vertices ({} instructors + students), {} directed edges",
        g.num_vertices(),
        g.num_vertices(),
        g.expanded_edge_count()
    );

    // The graph is directed: instructors have out-edges, students only
    // in-edges.
    let mut teaching_loads: Vec<(usize, String)> = g
        .vertices()
        .filter_map(|u| {
            let name = g.properties().get(u, "Name")?.as_text()?.to_string();
            if name.starts_with("instructor") {
                Some((g.degree(u), name))
            } else {
                None
            }
        })
        .collect();
    teaching_loads.sort_unstable_by(|a, b| b.cmp(a));
    println!("\nstudents reached per instructor (top 5):");
    for (students, name) in teaching_loads.iter().take(5) {
        println!("  {name}: {students}");
    }

    // Students never have out-edges in this graph.
    let student_out: usize = g
        .vertices()
        .filter(|&u| {
            g.properties()
                .get(u, "Name")
                .and_then(|p| p.as_text())
                .is_some_and(|n| n.starts_with("student"))
        })
        .map(|u| g.degree(u))
        .sum();
    assert_eq!(student_out, 0, "students must have no out-edges");
    println!("\nstudents have no out-edges, as expected for [Q3]'s directed semantics");

    // BFS from the busiest instructor: everything reachable is 1 hop away.
    if let Some((_, name)) = teaching_loads.first() {
        let instructor = g
            .vertices()
            .find(|&u| {
                g.properties()
                    .get(u, "Name")
                    .and_then(|p| p.as_text())
                    .is_some_and(|n| n == name.as_str())
            })
            .expect("instructor exists");
        let dist = graphgen::algo::bfs(&g, instructor);
        let reached = dist.iter().filter(|&&d| d != u32::MAX).count();
        println!("BFS from {name}: {} vertices reachable", reached - 1);
    }
}
