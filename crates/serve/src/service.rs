//! The versioned multi-graph registry: snapshot-isolated serving with
//! binary persistence and crash recovery.
//!
//! # Concurrency model
//!
//! A [`GraphService`] owns a relational [`Database`] plus any number of
//! named, incrementally maintained graphs. Each graph is published as an
//! immutable [`GraphSnapshot`] behind an `Arc`:
//!
//! * **readers** call [`GraphService::snapshot`], which clones the current
//!   `Arc` under a briefly held read lock. From then on the reader works
//!   on a *pinned version* — no lock held, no interference from writers,
//!   and the view is byte-identical ([`GraphHandle::canonical_bytes`]) to
//!   a committed version for as long as the `Arc` lives;
//! * **the writer** (one at a time, serialized by the service's writer
//!   lock) mutates the database, pushes the resulting [`DeltaBatch`]
//!   through each graph's private *working handle*, and atomically
//!   publishes a structurally shared [`GraphHandle::reader_clone`] of it
//!   as the next version. A reader therefore never observes a torn
//!   mid-patch state: every observable snapshot **is** some committed
//!   version.
//!
//! **Publish cost is delta-bound.** The working handle's adjacency is
//! `Arc`-chunked (`graphgen_graph::chunk`) and its id map / properties are
//! `Arc`-shared, so a `reader_clone` is `O(#chunks)` pointer bumps; the
//! patch itself copies-on-write only the chunks the delta lands in, and
//! the (graph-sized) delta-maintenance state is owned by the writer alone
//! and never copied. Pinned older versions keep pointing at the pre-patch
//! chunks — they are **immune** to later writes, byte-for-byte (asserted
//! by `tests/sharing_oracle.rs`).
//!
//! # Persistence
//!
//! With a directory attached ([`GraphService::create`] /
//! [`GraphService::open`]), every committed state is recoverable:
//!
//! ```text
//! dir/
//!   db.snap            magic GGSVDB2\0 | u64 version | Database
//!                      (value dictionary first, then the tables)
//!   db.wal             records: u64 version | DeltaBatch     (see wal.rs)
//!   <name>.graph.snap  magic GGSVGR5\0 | u64 version | u64 db_version
//!                      | dsl | frozen plans (per chain: cuts, planned
//!                      outputs, planned cost) | GraphHandle snapshot
//!                      (GGSNAP3, chunked + dense-id interned)
//!   <name>.graph.wal   records: u64 version | u64 db_version | DeltaBatch
//! ```
//!
//! Graph snapshots are written from the **working** handle (it owns the
//! delta-maintenance state recovery needs; published reader clones do
//! not). Every older format — `GGSVGR4\0` (value-keyed maintenance state)
//! back to `GGSVGR2\0` (flat-adjacency `GGSNAP1` handle bytes) — is
//! rejected with a clean magic mismatch.
//!
//! Snapshot files carry a whole-file fxhash64 trailer ([`crate::wal::seal`])
//! and WAL records carry per-record checksums, so recovery surfaces
//! corruption as [`ServeError::Corrupt`] instead of decoding flipped bytes.
//!
//! A batch is appended to the write-ahead logs **before** its version is
//! published, so an acknowledged version is always recoverable. When a
//! graph's WAL grows past [`ServiceConfig::compact_threshold`], it is
//! folded into a fresh snapshot (atomic tmp+rename) and the log is
//! truncated; [`GraphService::open`] replays only WAL records *newer* than
//! the snapshot version, so every mid-compaction crash layout (old
//! snapshot + full log, new snapshot + not-yet-truncated log, leftover
//! `.tmp`) recovers to the exact pre-crash state.
//!
//! The database WAL and the per-graph WALs are separate files, appended in
//! sequence, so a crash can land *between* the two appends of one batch.
//! The `db_version` stamp on every graph snapshot and graph WAL record is
//! the cross-log correlation that makes this window safe: recovery knows
//! exactly which database version each recovered graph is consistent with,
//! and replays any later db-WAL batches the graph's own log is missing
//! (skipping batches that touch none of its tables, exactly as the live
//! write path would). So that db log truncation can never strand a graph,
//! db compaction first folds every graph whose durable stamp lags the
//! current database version; a graph stamp *older than `db.snap`* is
//! therefore impossible in any crash layout and recovery rejects it as
//! [`ServeError::Corrupt`] instead of serving a silently diverged graph.

use crate::error::{ServeError, ServeResult};
use crate::wal::{seal, unseal, write_file_atomic, Wal};
use graphgen_common::codec::{self, Reader};
use graphgen_common::metrics;
use graphgen_common::region::Region;
use graphgen_common::FxHashMap;
use graphgen_core::cost::{
    cost_with_cuts, estimate_chain, plan_fingerprint, render_explain, render_unknown,
};
use graphgen_core::{catalog_view, Error, GraphGen, GraphGenConfig, GraphHandle, GraphPatch};
use graphgen_dsl::{check_source, CheckCatalog, CheckOptions, CheckReport, EdgeChain};
use graphgen_reldb::{Database, DeltaBatch, Value};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Magic prefix of `db.snap` (trailing digit = format version; format 2
/// prepends the database's value dictionary — the dense-id interner the
/// catalog and the interned join operators key by — to the table section).
pub const DB_SNAP_MAGIC: [u8; 8] = *b"GGSVDB2\0";
/// Magic prefix of `<name>.graph.snap` (format 5 embeds the dense-id
/// interned `GGSNAP3` handle layout; format 4 added the frozen plan —
/// per-chain cuts and the estimates the plan was chosen with — for drift
/// detection; format 3 switched the embedded handle snapshot to the
/// chunked `GGSNAP2` layout. Older-format files fail `expect_magic`
/// cleanly).
pub const GRAPH_SNAP_MAGIC: [u8; 8] = *b"GGSVGR5\0";

/// Service knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Fold a WAL into a fresh snapshot once it exceeds this many bytes.
    pub compact_threshold: u64,
    /// Fsync WAL appends and snapshot writes (durability on return). Turn
    /// off for throughput experiments where the OS page cache is enough.
    pub fsync: bool,
    /// Worker threads for extraction and delta probes (`0` = the
    /// `GraphGenConfig` default: `GRAPHGEN_THREADS` or the available
    /// parallelism).
    pub threads: usize,
    /// A graph's plan is flagged stale when re-costing its frozen cuts
    /// against the live catalog exceeds the live min-cost plan by this
    /// ratio (or when the min-cost plan's shape changed outright).
    pub drift_threshold: f64,
    /// An operation at or above this wall time (nanoseconds) counts as
    /// slow: it bumps `graphgen_slow_ops_total` and lands in the `TRACE`
    /// ring with its phase breakdown. Failed operations are traced
    /// regardless of duration.
    pub slow_op_ns: u64,
    /// Capacity of the slow-op trace ring (oldest events are evicted, and
    /// counted, once it is full).
    pub trace_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            compact_threshold: 1 << 20,
            fsync: true,
            threads: 0,
            drift_threshold: 2.0,
            slow_op_ns: 100_000_000, // 100 ms
            trace_capacity: 64,
        }
    }
}

/// One published, immutable version of a named graph. Readers hold it via
/// `Arc`; everything on it is lock-free from then on.
#[derive(Debug)]
pub struct GraphSnapshot {
    name: String,
    version: u64,
    db_version: u64,
    handle: GraphHandle,
}

impl GraphSnapshot {
    /// The graph's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The committed version this snapshot pins (1 = initial extraction;
    /// +1 per applied batch).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The database version this snapshot was built against. The snapshot
    /// is also consistent with every later database version whose batches
    /// left its referenced tables untouched (such batches do not produce a
    /// new graph version).
    pub fn db_version(&self) -> u64 {
        self.db_version
    }

    /// The graph itself (read-only: the snapshot is shared).
    pub fn handle(&self) -> &GraphHandle {
        &self.handle
    }

    /// Canonical key-space serialization of this version (the equality the
    /// isolation tests assert).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        self.handle.canonical_bytes()
    }
}

/// What one [`GraphService::apply`] call did.
#[derive(Debug, Clone, Default)]
pub struct ApplyOutcome {
    /// Mutations actually applied to the database (absent delete requests
    /// are dropped by the mutation API and count for nothing).
    pub rows: usize,
    /// Per affected graph: the newly published version and the merged
    /// patch counters.
    pub graphs: Vec<(String, u64, GraphPatch)>,
}

/// Per-graph health numbers (the `STATS` protocol surface).
#[derive(Debug, Clone)]
pub struct GraphStats {
    /// Registry name.
    pub name: String,
    /// Currently published version.
    pub version: u64,
    /// Live vertices.
    pub vertices: usize,
    /// Logical (expanded, deduplicated) directed edges.
    pub edges: u64,
    /// Representation label of the served handle.
    pub rep: String,
    /// Bytes in the graph's write-ahead log (0 when not persisted).
    pub wal_bytes: u64,
    /// Cost of the frozen plan re-costed on live statistics, relative to
    /// the live min-cost plan (1.0 = still optimal).
    pub drift: f64,
    /// True when the live min-cost plan's fingerprint differs from the
    /// frozen plan's, or `drift` exceeds the configured threshold — the
    /// trigger signal for re-planning.
    pub stale_plan: bool,
}

/// One table's worth of mutations for [`GraphService::apply`].
#[derive(Debug, Clone, Default)]
pub struct TableMutation {
    /// Target table.
    pub table: String,
    /// Rows to append.
    pub inserts: Vec<Vec<Value>>,
    /// Rows to delete (bag semantics; absent rows are no-ops).
    pub deletes: Vec<Vec<Value>>,
}

impl TableMutation {
    /// Mutation against `table` with the given inserts and deletes.
    pub fn new(
        table: impl Into<String>,
        inserts: Vec<Vec<Value>>,
        deletes: Vec<Vec<Value>>,
    ) -> Self {
        Self {
            table: table.into(),
            inserts,
            deletes,
        }
    }
}

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

/// The plan one chain of a graph was extracted with, frozen at
/// extraction time: the cut set (which joins were postponed) plus the
/// estimates the planner chose it on. Persisted in the graph snapshot so
/// recovery restores drift detection without re-planning.
#[derive(Debug, Clone)]
struct FrozenChainPlan {
    /// Per-join postpone flags (length = #atoms - 1).
    cuts: Vec<bool>,
    /// Per-join `|L|·|R|/d` estimates at plan time.
    planned_outputs: Vec<f64>,
    /// Total plan cost under the statistics it was planned with.
    planned_cost: f64,
}

/// Writer-side state of one registered graph.
#[derive(Debug)]
struct GraphState {
    dsl: String,
    /// The `Edges` chains compiled from `dsl` once, for drift re-costing
    /// (pure catalog arithmetic on every publish).
    chains: Vec<EdgeChain>,
    /// Frozen extraction-time plan per chain, parallel to `chains`.
    frozen: Vec<FrozenChainPlan>,
    /// Latest frozen-vs-min-cost ratio (see [`GraphStats::drift`]).
    drift: f64,
    /// Latest staleness verdict (see [`GraphStats::stale_plan`]).
    stale_plan: bool,
    /// The writer's private working handle: owns the delta-maintenance
    /// state, is patched **in place** per batch, and is the source of
    /// every published [`GraphHandle::reader_clone`] and every on-disk
    /// snapshot. Readers never touch it.
    working: GraphHandle,
    /// The currently published version (a structurally shared reader
    /// clone of `working` as of its commit).
    current: Arc<GraphSnapshot>,
    wal: Option<Wal>,
    /// Highest database version the graph's *durable* state (the snapshot
    /// file's stamp or its last WAL record) is known consistent with. Lags
    /// `current.db_version()` while batches skip this graph; db compaction
    /// uses it to fold the graph before discarding db-WAL records its
    /// files have never seen.
    durable_db_version: u64,
}

/// Everything the single writer touches, behind one lock.
#[derive(Debug)]
struct Inner {
    db: Database,
    db_version: u64,
    db_wal: Option<Wal>,
    graphs: FxHashMap<String, GraphState>,
    dir: Option<PathBuf>,
    cfg: ServiceConfig,
    /// Per-code counts of EXTRACT requests the static checker rejected
    /// (`E001 -> 3`, …). Service-wide, not persisted: a rejected
    /// extraction never registers anything, so there is no graph to
    /// attribute it to and nothing for recovery to restore.
    check_rejects: FxHashMap<String, u64>,
    /// Set when a write failed *after* the database was already mutated:
    /// the in-memory state may be ahead of the logs, so further writer
    /// operations would compound the divergence silently. Reads keep
    /// working; recovery is reopening from the directory.
    wedged: bool,
}

/// The serving registry. See the module docs for the concurrency and
/// persistence model.
#[derive(Debug)]
pub struct GraphService {
    inner: Mutex<Inner>,
    /// Reader-side map: name → currently published snapshot. Writers swap
    /// entries under a short write lock after committing.
    published: RwLock<FxHashMap<String, Arc<GraphSnapshot>>>,
    /// The `ANALYZE` engine: worker pool + versioned result cache. Fresh
    /// on every construction, so recovery starts with a cold cache.
    analytics: crate::analyze::Analytics,
    /// The observability hub (registry + slow-op trace). Lives outside
    /// `inner` so the hot paths — readers pinning snapshots, the protocol
    /// layer timing requests — record without touching the writer lock.
    /// In-memory only: reopening a service starts every instrument at
    /// zero while graph/database versions persist.
    obs: crate::obs::Obs,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

impl GraphService {
    // -- construction -----------------------------------------------------

    /// A purely in-memory service (no persistence) over `db`.
    pub fn in_memory(db: Database) -> Self {
        Self::assemble(db, None, ServiceConfig::default())
    }

    /// Create a **fresh** persistent service in `dir` (created if needed;
    /// must not already hold a service — use [`GraphService::open`] for
    /// that). The database snapshot is written immediately.
    pub fn create(dir: impl AsRef<Path>, db: Database, cfg: ServiceConfig) -> ServeResult<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        if dir.join("db.snap").exists() {
            return Err(ServeError::corrupt(
                dir.join("db.snap").display().to_string(),
                "already exists; use GraphService::open to recover it",
            ));
        }
        let service = Self::assemble(db, Some(dir.to_path_buf()), cfg);
        {
            let mut inner = service.inner.lock().unwrap();
            // The directory may hold debris from a previous incarnation
            // (e.g. the operator deleted a corrupt db.snap to start over):
            // graph files extracted from a database this service never
            // saw, WAL records, half-written `.tmp` siblings. All of it
            // must be gone *before* the fresh db.snap is written — a later
            // `open` would otherwise recover those graphs as live, or
            // (for the reset-but-not-deleted db.wal) replay mutations over
            // the new database and mask its own records behind recycled
            // version numbers. A crash mid-cleanup leaves no db.snap,
            // which `open` refuses, so `create` simply runs again.
            for entry in std::fs::read_dir(dir)? {
                let path = entry?.path();
                let Some(file) = path.file_name().and_then(|n| n.to_str()) else {
                    continue;
                };
                if file.ends_with(".graph.snap")
                    || file.ends_with(".graph.wal")
                    || file.ends_with(".tmp")
                {
                    std::fs::remove_file(&path)?;
                }
            }
            let (mut wal, stale) = Wal::open(dir.join("db.wal"))?;
            if !stale.is_empty() {
                wal.reset()?;
            }
            wal.set_fsync_histogram(service.obs.m.wal_fsync_ns.clone());
            write_db_snapshot(&mut inner)?;
            inner.db_wal = Some(wal);
        }
        Ok(service)
    }

    /// Recover a persistent service from `dir`: load every snapshot, replay
    /// every WAL record newer than its snapshot, and serve the exact
    /// pre-crash committed state.
    pub fn open(dir: impl AsRef<Path>) -> ServeResult<Self> {
        Self::open_with(dir, ServiceConfig::default())
    }

    /// [`GraphService::open`] with explicit knobs.
    pub fn open_with(dir: impl AsRef<Path>, cfg: ServiceConfig) -> ServeResult<Self> {
        let dir = dir.as_ref();
        // -- database ------------------------------------------------------
        let db_snap_path = dir.join("db.snap");
        let bytes = std::fs::read(&db_snap_path)?;
        let content = unseal(&bytes).ok_or_else(|| {
            ServeError::corrupt(
                db_snap_path.display().to_string(),
                "integrity checksum mismatch",
            )
        })?;
        let mut r = Reader::new(content);
        let parse = |r: &mut Reader<'_>| -> Result<(u64, Database), graphgen_common::CodecError> {
            r.expect_magic(&DB_SNAP_MAGIC)?;
            let version = r.u64()?;
            let db = Database::decode(r)?;
            r.expect_end()?;
            Ok((version, db))
        };
        let (snap_version, mut db) = parse(&mut r)
            .map_err(|e| ServeError::corrupt(db_snap_path.display().to_string(), e))?;
        let replay_t0 = Instant::now();
        let _replay_span = metrics::span("recovery", Region::Recovery);
        let (mut db_wal, db_records) = Wal::open(dir.join("db.wal"))?;
        let mut db_version = snap_version;
        // The replayed tail is kept for the per-graph pass below: a graph
        // whose log is missing the final batch of a crashed `apply` (the
        // two logs are appended non-atomically) is caught up from it.
        let mut db_tail: Vec<(u64, DeltaBatch)> = Vec::new();
        let mut db_replayed = 0u64;
        for record in db_records {
            let (version, batch) = decode_wal_record(&record)
                .map_err(|e| ServeError::corrupt(db_wal.path().display().to_string(), e))?;
            if version <= db_version {
                continue; // already folded into the snapshot (mid-compaction crash)
            }
            replay_batch_on_db(&mut db, &batch)?;
            db_version = version;
            db_replayed += 1;
            db_tail.push((version, batch));
        }
        let service = Self::assemble(db, Some(dir.to_path_buf()), cfg);
        // The registry is born with the service, so the db replay above is
        // timed externally and recorded here (instruments are in-memory
        // only: a reopened service starts them at zero).
        service.obs.m.recovery_replay_ns.record_since(replay_t0);
        service.obs.m.recovery_records_total.add(db_replayed);
        db_wal.set_fsync_histogram(service.obs.m.wal_fsync_ns.clone());
        {
            let mut inner = service.inner.lock().unwrap();
            inner.db_version = db_version;
            inner.db_wal = Some(db_wal);
            // -- graphs ----------------------------------------------------
            let mut stems: Vec<(String, PathBuf)> = Vec::new();
            for entry in std::fs::read_dir(dir)? {
                let path = entry?.path();
                let Some(file) = path.file_name().and_then(|n| n.to_str()) else {
                    continue;
                };
                if let Some(stem) = file.strip_suffix(".graph.snap") {
                    stems.push((stem.to_string(), path.clone()));
                }
            }
            stems.sort();
            // Snapshots record the thread count they were extracted with;
            // this service's own knob (resolved the same way extraction
            // resolves it) wins for every recovered handle.
            let threads = Self::extraction_config(&cfg).threads();
            for (name, snap_path) in stems {
                let graph_t0 = Instant::now();
                let (mut state, replayed) = recover_graph(
                    &name,
                    &snap_path,
                    dir,
                    snap_version,
                    &db_tail,
                    threads,
                    cfg.fsync,
                )?;
                service.obs.m.recovery_replay_ns.record_since(graph_t0);
                service.obs.m.recovery_records_total.add(replayed);
                if let Some(wal) = state.wal.as_mut() {
                    wal.set_fsync_histogram(service.obs.m.wal_fsync_ns.clone());
                }
                inner.graphs.insert(name, state);
            }
            // Re-cost every recovered graph's frozen plan against the
            // recovered catalog: drift survives restarts without a scan.
            let catalog = catalog_view(&inner.db);
            let factor = Self::extraction_config(&cfg).large_output_factor();
            for state in inner.graphs.values_mut() {
                recompute_drift(&catalog, state, factor, cfg.drift_threshold);
            }
            let mut published = service.published.write().unwrap();
            for (name, state) in &inner.graphs {
                published.insert(name.clone(), Arc::clone(&state.current));
            }
        }
        Ok(service)
    }

    fn assemble(db: Database, dir: Option<PathBuf>, cfg: ServiceConfig) -> Self {
        let obs = crate::obs::Obs::new(cfg.slow_op_ns, cfg.trace_capacity);
        // The analyze engine's counters are registry instruments, so the
        // METRICS exposition and ANALYZE STATUS read the same state.
        let analytics = crate::analyze::Analytics::with_instruments(
            obs.m.analyze_computes_total.clone(),
            obs.m.analyze_hits_total.clone(),
            obs.m.analyze_warm_starts_total.clone(),
            obs.m.analyze_iterations_saved_total.clone(),
            obs.m.analyze_compute_ns.clone(),
        );
        Self {
            inner: Mutex::new(Inner {
                db,
                db_version: 0,
                db_wal: None,
                graphs: FxHashMap::default(),
                dir,
                cfg,
                check_rejects: FxHashMap::default(),
                wedged: false,
            }),
            published: RwLock::new(FxHashMap::default()),
            analytics,
            obs,
        }
    }

    /// The observability hub: the instrument registry, the per-verb and
    /// per-phase histograms, and the slow-op trace ring.
    pub fn obs(&self) -> &crate::obs::Obs {
        &self.obs
    }

    /// Render the Prometheus-style text exposition of every instrument,
    /// refreshing the point-in-time gauges (graph count, database
    /// version/rows, wedge flag, analyze cache occupancy) from live state
    /// first. One coherent registry snapshot per call: counters are read
    /// monotonically, never torn against each other mid-line.
    pub fn metrics_text(&self) -> String {
        {
            let inner = self.inner.lock().unwrap();
            self.obs.m.graphs.set(inner.graphs.len() as u64);
            self.obs.m.db_version.set(inner.db_version);
            self.obs.m.db_rows.set(inner.db.total_rows() as u64);
            let interned = inner.db.dict().live()
                + inner
                    .graphs
                    .values()
                    .map(|g| g.working.intern_entries())
                    .sum::<usize>();
            self.obs.m.intern_entries.set(interned as u64);
            self.obs.m.wedged.set(u64::from(inner.wedged));
        }
        let c = self.analyze_counters();
        self.obs.m.analyze_cached_entries.set(c.cached as u64);
        self.obs.m.analyze_inflight.set(c.in_flight as u64);
        self.obs.render()
    }

    /// The analysis engine (crate-internal: `analyze.rs` implements the
    /// public `analyze*` methods against it).
    pub(crate) fn analytics(&self) -> &crate::analyze::Analytics {
        &self.analytics
    }

    /// Thread count analyses run with (the extraction thread setting).
    pub(crate) fn analysis_threads(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        Self::extraction_config(&inner.cfg).threads()
    }

    fn extraction_config(cfg: &ServiceConfig) -> GraphGenConfig {
        let mut b = GraphGenConfig::builder().incremental(true);
        if cfg.threads > 0 {
            b = b.threads(cfg.threads);
        }
        b.build()
    }

    // -- registry ---------------------------------------------------------

    /// Extract a new named graph from the current database state with the
    /// given DSL program, register it at version 1, persist its snapshot
    /// (when the service is persistent), and publish it.
    pub fn extract(&self, name: &str, dsl: &str) -> ServeResult<Arc<GraphSnapshot>> {
        if !valid_name(name) {
            return Err(ServeError::BadName(name.to_string()));
        }
        let mut inner = self.inner.lock().unwrap();
        if inner.wedged {
            return Err(ServeError::Wedged);
        }
        if inner.graphs.contains_key(name) {
            return Err(ServeError::DuplicateGraph(name.to_string()));
        }
        let t0 = Instant::now();
        let result =
            GraphGen::with_config(&inner.db, Self::extraction_config(&inner.cfg)).extract(dsl);
        let handle = match result {
            Ok(handle) => handle,
            Err(e) => {
                // Count what the static checker rejected, per code, so
                // STATS can report how often (and why) extraction requests
                // bounce. Parse failures count under their E000 code. The
                // registry total mirrors the sum of the per-code map.
                match &e {
                    Error::Check(diags) => {
                        for d in diags {
                            *inner
                                .check_rejects
                                .entry(d.code.code().to_string())
                                .or_insert(0) += 1;
                        }
                        self.obs.m.check_rejects_total.add(diags.len() as u64);
                    }
                    Error::Dsl(parse) => {
                        *inner
                            .check_rejects
                            .entry(parse.diagnostic().code.code().to_string())
                            .or_insert(0) += 1;
                        self.obs.m.check_rejects_total.inc();
                    }
                    _ => {}
                }
                return Err(e.into());
            }
        };
        let snapshot = Arc::new(GraphSnapshot {
            name: name.to_string(),
            version: 1,
            db_version: inner.db_version,
            handle: handle.reader_clone(),
        });
        // Freeze the plan the extraction ran with: the drift detector
        // re-costs exactly these cuts against every future catalog state.
        let chains = graphgen_dsl::compile(dsl).map_or_else(|_| Vec::new(), |spec| spec.edges);
        let frozen = frozen_plans(handle.report());
        let mut state = GraphState {
            dsl: dsl.to_string(),
            chains,
            frozen,
            drift: 1.0,
            stale_plan: false,
            working: handle,
            current: Arc::clone(&snapshot),
            wal: None,
            durable_db_version: inner.db_version,
        };
        recompute_drift(
            &catalog_view(&inner.db),
            &mut state,
            Self::extraction_config(&inner.cfg).large_output_factor(),
            inner.cfg.drift_threshold,
        );
        if let Some(dir) = inner.dir.clone() {
            // A prior incarnation of this graph name may have left records
            // behind (e.g. a crash between drop_graph's two unlinks).
            // Empty the log *before* writing the version-1 snapshot: in
            // this order a crash window leaves either an empty WAL and no
            // snapshot (recovery registers graphs by their .graph.snap
            // file, so the leftover is inert) or the fully consistent
            // pair. Snapshot first would open a window where the fresh
            // snapshot sits beside old-incarnation records that recovery
            // would replay onto it.
            let (mut wal, stale) = Wal::open(graph_wal_path(&dir, name))?;
            if !stale.is_empty() {
                wal.reset()?;
            }
            wal.set_fsync_histogram(self.obs.m.wal_fsync_ns.clone());
            write_graph_snapshot(&dir, &state, inner.db_version, inner.cfg.fsync)?;
            state.wal = Some(wal);
        }
        inner.graphs.insert(name.to_string(), state);
        self.published
            .write()
            .unwrap()
            .insert(name.to_string(), Arc::clone(&snapshot));
        self.obs.m.extracts_total.inc();
        self.obs.m.extract_ns.record_since(t0);
        Ok(snapshot)
    }

    /// Statically check a DSL program against the service's current
    /// database schema and statistics without extracting or registering
    /// anything. `name` is validated exactly like [`GraphService::extract`]
    /// does (so a `CHECK` pre-flights the matching `EXTRACT` line), but a
    /// registered graph under that name is *not* an error — re-checking a
    /// live graph's query is legitimate. Never bumps the rejection
    /// counters: only real extraction attempts do.
    ///
    /// Parse failures come back as a report whose single diagnostic is the
    /// `E000` syntax error, not as an `Err` — a malformed program is a
    /// checker *finding*, not a service failure.
    pub fn check(&self, name: &str, dsl: &str) -> ServeResult<CheckReport> {
        if !valid_name(name) {
            return Err(ServeError::BadName(name.to_string()));
        }
        let inner = self.inner.lock().unwrap();
        let catalog = catalog_view(&inner.db);
        Ok(check_source(dsl, Some(&catalog), &CheckOptions::default()))
    }

    /// Cost a DSL program against the service's current statistics and
    /// render the chosen plan trees (the `EXPLAIN <name> <dsl>` verb) —
    /// pure catalog arithmetic, nothing is extracted or registered.
    /// `name` is validated like [`GraphService::extract`] so the line
    /// pre-flights the matching `EXTRACT`.
    pub fn explain_dsl(&self, name: &str, dsl: &str) -> ServeResult<String> {
        if !valid_name(name) {
            return Err(ServeError::BadName(name.to_string()));
        }
        let inner = self.inner.lock().unwrap();
        let explanation =
            GraphGen::with_config(&inner.db, Self::extraction_config(&inner.cfg)).explain(dsl)?;
        Ok(explanation.to_string())
    }

    /// Re-cost a **registered** graph's frozen extraction-time plan
    /// against the current statistics (the `EXPLAIN <name>` verb): the
    /// drift verdict, the frozen plan's live cost, and the live min-cost
    /// plan trees side by side.
    pub fn explain_graph(&self, name: &str) -> ServeResult<String> {
        let inner = self.inner.lock().unwrap();
        let state = inner
            .graphs
            .get(name)
            .ok_or_else(|| ServeError::UnknownGraph(name.to_string()))?;
        let catalog = catalog_view(&inner.db);
        let factor = Self::extraction_config(&inner.cfg).large_output_factor();
        let mut out = format!(
            "graph {name}: drift={:.2} stale_plan={}\n",
            state.drift, state.stale_plan
        );
        for (i, (chain, frozen)) in state.chains.iter().zip(&state.frozen).enumerate() {
            let label = format!("chain {}", i + 1);
            match estimate_chain(&catalog, &chain.steps, factor) {
                Some(best) => {
                    let frozen_live = cost_with_cuts(&catalog, &chain.steps, factor, &frozen.cuts)
                        .unwrap_or(f64::NAN);
                    out.push_str(&format!(
                        "  frozen {label}: planned_cost={:.0} live_cost={:.0} cuts={}\n",
                        frozen.planned_cost,
                        frozen_live,
                        frozen
                            .cuts
                            .iter()
                            .map(|&c| if c { "cut" } else { "keep" })
                            .collect::<Vec<_>>()
                            .join(","),
                    ));
                    out.push_str(&render_explain(&format!("live {label}"), &best));
                }
                None => out.push_str(&render_unknown(&format!("live {label}"), &chain.steps)),
            }
        }
        Ok(out)
    }

    /// Per-code counts of EXTRACT requests the static checker rejected,
    /// sorted by code (`[("E001", 3), …]`). Empty when nothing was
    /// rejected since the service opened.
    pub fn check_reject_counts(&self) -> Vec<(String, u64)> {
        let inner = self.inner.lock().unwrap();
        let mut counts: Vec<(String, u64)> = inner
            .check_rejects
            .iter()
            .map(|(code, n)| (code.clone(), *n))
            .collect();
        counts.sort_unstable();
        counts
    }

    /// Unregister a graph and delete its persistence files. Readers holding
    /// snapshots keep their pinned versions.
    pub fn drop_graph(&self, name: &str) -> ServeResult<()> {
        let mut inner = self.inner.lock().unwrap();
        let state = inner
            .graphs
            .remove(name)
            .ok_or_else(|| ServeError::UnknownGraph(name.to_string()))?;
        drop(state.wal); // close before unlinking (Windows-friendliness)
        if let Some(dir) = &inner.dir {
            let _ = std::fs::remove_file(graph_snap_path(dir, name));
            let _ = std::fs::remove_file(graph_wal_path(dir, name));
        }
        self.published.write().unwrap().remove(name);
        self.analytics.forget(name);
        Ok(())
    }

    /// The currently published version of `name`. This is the reader entry
    /// point: the returned snapshot is immutable and pinned — concurrent
    /// writers publish *new* versions, they never touch this one. The call
    /// does one map lookup and one `Arc` reference bump under the read
    /// lock — no part of the snapshot itself is copied, so readers cost
    /// the writer nothing and scale with contention.
    pub fn snapshot(&self, name: &str) -> ServeResult<Arc<GraphSnapshot>> {
        self.published
            .read()
            .unwrap()
            .get(name)
            .map(Arc::clone)
            .ok_or_else(|| ServeError::UnknownGraph(name.to_string()))
            // One relaxed atomic increment: the reader hot path stays
            // lock-free.
            .inspect(|_| self.obs.m.snapshots_total.inc())
    }

    /// Registered graph names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.published.read().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    /// Per-graph health numbers, sorted by name, plus the database row
    /// count as the second return.
    ///
    /// The edge count is a full logical-graph expansion; it is computed on
    /// version-pinned snapshot `Arc`s *after* the writer lock is released,
    /// so a `STATS` request never stalls the write path for the duration
    /// of a traversal.
    pub fn stats(&self) -> (Vec<GraphStats>, usize) {
        use graphgen_core::AnyGraph;
        use graphgen_graph::GraphRep;
        let (entries, db_rows) = {
            let inner = self.inner.lock().unwrap();
            let mut names: Vec<&String> = inner.graphs.keys().collect();
            names.sort();
            let entries: Vec<(String, Arc<GraphSnapshot>, u64, f64, bool)> = names
                .into_iter()
                .map(|name| {
                    let state = &inner.graphs[name.as_str()];
                    (
                        name.clone(),
                        Arc::clone(&state.current),
                        state.wal.as_ref().map_or(0, Wal::bytes),
                        state.drift,
                        state.stale_plan,
                    )
                })
                .collect();
            (entries, inner.db.total_rows())
        };
        let out = entries
            .into_iter()
            .map(|(name, snapshot, wal_bytes, drift, stale_plan)| {
                let h = snapshot.handle();
                let rep = match h.graph() {
                    AnyGraph::CDup(_) => "C-DUP",
                    AnyGraph::Exp(_) => "EXP",
                    AnyGraph::Dedup1(_) => "DEDUP-1",
                    AnyGraph::Dedup2(_) => "DEDUP-2",
                    AnyGraph::Bitmap(_) => "BITMAP",
                };
                GraphStats {
                    name,
                    version: snapshot.version(),
                    vertices: h.num_vertices(),
                    edges: h.expanded_edge_count(),
                    rep: rep.to_string(),
                    wal_bytes,
                    drift,
                    stale_plan,
                }
            })
            .collect();
        (out, db_rows)
    }

    // -- the write path ---------------------------------------------------

    /// Apply a batch of table mutations: mutate the database, log the
    /// resulting [`DeltaBatch`] to every write-ahead log, patch a private
    /// clone of every registered graph, and atomically publish the next
    /// version of each. Readers pinned to older versions are unaffected.
    ///
    /// Validation errors (unknown table, schema mismatch) are detected
    /// **before** anything is mutated, so a rejected call is a true no-op.
    /// A failure *after* mutation begins (an io error on a WAL, an
    /// inconsistent hand-built state) wedges the writer — see
    /// [`ServeError::Wedged`] — because the in-memory state can no longer
    /// be proven consistent with the logs; graphs that committed their WAL
    /// record before the failure are still published.
    pub fn apply(&self, mutations: &[TableMutation]) -> ServeResult<ApplyOutcome> {
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        if inner.wedged {
            return Err(ServeError::Wedged);
        }
        let t0 = Instant::now();
        // 0. Pre-validate every mutation against the catalog so the whole
        //    call either passes validation or mutates nothing.
        {
            let _span = metrics::span("validate", Region::Validate);
            for m in mutations {
                let table = inner.db.table(&m.table)?;
                for row in m.inserts.iter().chain(m.deletes.iter()) {
                    table.schema().check_row(row)?;
                }
            }
        }
        let mut batch = DeltaBatch::new();
        for m in mutations {
            let step = (|| -> ServeResult<()> {
                if !m.inserts.is_empty() {
                    batch.push(inner.db.insert_rows(&m.table, m.inserts.clone())?);
                }
                if !m.deletes.is_empty() {
                    batch.push(inner.db.delete_rows(&m.table, &m.deletes)?);
                }
                Ok(())
            })();
            if let Err(e) = step {
                // Unreachable given the pre-validation, but if it ever
                // fires with earlier mutations already applied, the db has
                // diverged from the (unwritten) log: wedge.
                inner.wedged = !batch.is_empty();
                return Err(e);
            }
        }
        let mut outcome = ApplyOutcome {
            rows: batch.len(),
            graphs: Vec::new(),
        };
        if batch.is_empty() {
            return Ok(outcome);
        }
        self.obs.m.applies_total.inc();
        self.obs.m.apply_rows_total.add(batch.len() as u64);
        let fsync = inner.cfg.fsync;
        let threshold = inner.cfg.compact_threshold;

        // 1. WAL the batch for the database first (redo rule: log before
        //    the version it produces is observable anywhere).
        inner.db_version += 1;
        let db_version = inner.db_version;
        if let Some(wal) = inner.db_wal.as_mut() {
            let record = encode_wal_record(db_version, &batch);
            let _span = metrics::span("wal_append", Region::WalAppend);
            if let Err(e) = wal.append(&record, fsync) {
                // The db is mutated but the log does not carry the batch:
                // a restart would recover the pre-batch state while this
                // process serves the post-batch one. Refuse further writes.
                inner.wedged = true;
                return Err(e.into());
            }
            self.obs.m.wal_appends_total.inc();
            self.obs.m.wal_append_bytes_total.add(record.len() as u64);
        }

        // 2. Patch every affected graph's working handle in place, WAL,
        //    then publish a structurally shared reader clone (O(#chunks):
        //    the delta-bound publish). A graph is affected iff the batch
        //    touches a table its spec reads — such a batch must always be
        //    applied and versioned (even when it changes no visible edge,
        //    it advances the maintenance state the next delta builds on);
        //    a graph whose tables are untouched is skipped wholesale and
        //    keeps its version. Published snapshots are immune to the
        //    in-place patching: a write copies the chunks it touches,
        //    never the ones a pinned version points at.
        let mut names: Vec<String> = inner.graphs.keys().cloned().collect();
        names.sort();
        let mut newly_published: Vec<(String, Arc<GraphSnapshot>)> = Vec::new();
        // One catalog view of the post-batch statistics serves every
        // affected graph's drift recompute below (pure arithmetic; a graph
        // whose tables the batch left untouched keeps its verdict — its
        // statistics did not move).
        let catalog = catalog_view(&inner.db);
        let factor = Self::extraction_config(&inner.cfg).large_output_factor();
        let drift_threshold = inner.cfg.drift_threshold;
        // On a mid-loop failure (io error, inconsistent delta) the graphs
        // patched *before* the failure have committed — their WAL records
        // are durable and `state.current` advanced — so they must still be
        // published; otherwise `stats()`/recovery and `snapshot()` would
        // disagree about the current version. The failing graph and every
        // graph after it in the order are now one batch behind the
        // database, so the writer is wedged and the error is returned
        // after the publication step below; reopening the directory heals
        // the lag (recovery replays the batch from the db WAL into every
        // graph whose own log is missing it).
        let mut apply_err: Option<ServeError> = None;
        for name in names {
            let state = inner.graphs.get_mut(&name).expect("listed name");
            let tables = state.working.referenced_tables();
            if !batch_affects(&batch, &tables) {
                continue;
            }
            let step = (|| -> ServeResult<()> {
                // In-place patch: a failure leaves the working handle
                // untrustworthy, which is exactly the wedge contract — the
                // published `current` is untouched and keeps serving.
                let patch = {
                    let _span = metrics::span("patch", Region::Patch);
                    state.working.apply_batch(&batch)?
                };
                let version = state.current.version() + 1;
                if let Some(wal) = state.wal.as_mut() {
                    let record = encode_graph_wal_record(version, db_version, &batch);
                    {
                        let _span = metrics::span("wal_append", Region::WalAppend);
                        wal.append(&record, fsync)?;
                    }
                    self.obs.m.wal_appends_total.inc();
                    self.obs.m.wal_append_bytes_total.add(record.len() as u64);
                    state.durable_db_version = db_version;
                }
                let snapshot = Arc::new(GraphSnapshot {
                    name: name.clone(),
                    version,
                    db_version,
                    handle: state.working.reader_clone(),
                });
                state.current = Arc::clone(&snapshot);
                recompute_drift(&catalog, state, factor, drift_threshold);
                outcome.graphs.push((name.clone(), version, patch));
                newly_published.push((name.clone(), snapshot));
                // 3. Compaction: fold an oversized WAL into a fresh
                //    snapshot.
                let oversized = state.wal.as_ref().is_some_and(|w| w.bytes() > threshold);
                if oversized {
                    let dir = inner.dir.clone().expect("wal implies dir");
                    let compact_t0 = Instant::now();
                    compact_graph(&dir, state, db_version, fsync)?;
                    self.obs.m.compactions_total.inc();
                    self.obs.m.compaction_ns.record_since(compact_t0);
                }
                Ok(())
            })();
            if let Err(e) = step {
                inner.wedged = true;
                apply_err = Some(e);
                break;
            }
        }

        // 4. Database compaction mirrors the graph rule. Errors here must
        //    not skip the publication step (the versions above already
        //    committed), so they route through `apply_err` too.
        if apply_err.is_none() {
            let db_oversized = inner.db_wal.as_ref().is_some_and(|w| w.bytes() > threshold);
            if db_oversized {
                let step = (|| -> ServeResult<()> {
                    // Truncating db.wal discards batches a quiescent
                    // graph's files have never recorded (its tables were
                    // untouched, so no record advanced its stamp). Fold
                    // every such graph first, stamped with the current
                    // database version, so recovery never meets a graph
                    // whose missing db batches were compacted away.
                    let dir = inner.dir.clone().expect("db wal implies dir");
                    let compact_t0 = Instant::now();
                    let mut names: Vec<String> = inner.graphs.keys().cloned().collect();
                    names.sort();
                    for name in names {
                        let state = inner.graphs.get_mut(&name).expect("listed name");
                        if state.wal.is_some() && state.durable_db_version < db_version {
                            compact_graph(&dir, state, db_version, fsync)?;
                            self.obs.m.compactions_total.inc();
                        }
                    }
                    write_db_snapshot(inner)?;
                    inner.db_wal.as_mut().expect("checked").reset()?;
                    // One fold of the db log (the lagging-graph folds above
                    // counted themselves); the duration covers the whole
                    // cascade.
                    self.obs.m.compactions_total.inc();
                    self.obs.m.compaction_ns.record_since(compact_t0);
                    Ok(())
                })();
                if let Err(e) = step {
                    inner.wedged = true;
                    apply_err = Some(e);
                }
            }
        }

        // Committed removals invalidate component warm-seeds from before
        // them — record that before the new versions become visible.
        for (name, version, patch) in &outcome.graphs {
            self.analytics.note_publish(name, *version, patch);
        }

        // 5. Atomic publication: one short write lock swaps every changed
        //    graph to its next version.
        if !newly_published.is_empty() {
            let _span = metrics::span("publish", Region::Publish);
            self.obs.m.publishes_total.add(newly_published.len() as u64);
            let mut published = self.published.write().unwrap();
            for (name, snapshot) in newly_published {
                published.insert(name, snapshot);
            }
        }
        self.obs.m.apply_ns.record_since(t0);
        match apply_err {
            Some(e) => Err(e),
            None => Ok(outcome),
        }
    }

    /// Fold `name`'s WAL into a fresh snapshot now (the automatic
    /// threshold does this lazily).
    pub fn compact(&self, name: &str) -> ServeResult<()> {
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        if inner.wedged {
            return Err(ServeError::Wedged);
        }
        let Some(dir) = inner.dir.clone() else {
            return Ok(()); // in-memory service: nothing to fold
        };
        // A non-wedged service's graphs are all consistent with the
        // current database version (every affected batch was applied), so
        // the fold can stamp them with it.
        let db_version = inner.db_version;
        let fsync = inner.cfg.fsync;
        let state = inner
            .graphs
            .get_mut(name)
            .ok_or_else(|| ServeError::UnknownGraph(name.to_string()))?;
        let t0 = Instant::now();
        compact_graph(&dir, state, db_version, fsync)?;
        self.obs.m.compactions_total.inc();
        self.obs.m.compaction_ns.record_since(t0);
        Ok(())
    }

    /// The persistence directory, if the service is persistent.
    pub fn dir(&self) -> Option<PathBuf> {
        self.inner.lock().unwrap().dir.clone()
    }
}

// ---------------------------------------------------------------------------
// Persistence helpers
// ---------------------------------------------------------------------------

/// Does `batch` touch any of the given referenced tables? The live write
/// path and the recovery catch-up must agree on this predicate exactly —
/// it decides which batches version a graph.
fn batch_affects(batch: &DeltaBatch, tables: &[String]) -> bool {
    batch
        .deltas()
        .iter()
        .any(|d| tables.iter().any(|t| t == d.table()))
}

/// Freeze the plans an extraction ran with, straight off its report:
/// the cut set plus the estimates the planner chose it on.
fn frozen_plans(report: &graphgen_core::ExtractionReport) -> Vec<FrozenChainPlan> {
    report
        .plans
        .iter()
        .map(|plan| FrozenChainPlan {
            cuts: plan.joins.iter().map(|j| j.large_output).collect(),
            planned_outputs: plan.joins.iter().map(|j| j.estimated_output).collect(),
            planned_cost: plan.estimated_cost,
        })
        .collect()
}

/// Re-cost a graph's frozen plans against `catalog` and compare with the
/// live min-cost plans — pure catalog arithmetic, no table is scanned.
/// `drift` becomes Σ frozen-cost / Σ min-cost (1.0 = still optimal);
/// `stale_plan` fires when the min-cost plan's fingerprint moved away
/// from the frozen cuts or the ratio exceeds `threshold`. When the
/// catalog lacks statistics the previous verdict is kept: no evidence is
/// not evidence of drift.
fn recompute_drift(catalog: &CheckCatalog, state: &mut GraphState, factor: f64, threshold: f64) {
    if state.chains.is_empty() || state.chains.len() != state.frozen.len() {
        return;
    }
    let mut frozen_live = 0.0f64;
    let mut best_live = 0.0f64;
    let mut shape_changed = false;
    for (chain, frozen) in state.chains.iter().zip(&state.frozen) {
        let Some(best) = estimate_chain(catalog, &chain.steps, factor) else {
            return;
        };
        let Some(frozen_cost) = cost_with_cuts(catalog, &chain.steps, factor, &frozen.cuts) else {
            return;
        };
        frozen_live += frozen_cost;
        best_live += best.cost;
        shape_changed |= best.fingerprint != plan_fingerprint(&chain.steps, &frozen.cuts);
    }
    state.drift = if best_live > 0.0 {
        frozen_live / best_live
    } else {
        1.0
    };
    state.stale_plan = shape_changed || state.drift > threshold;
}

fn graph_snap_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.graph.snap"))
}

fn graph_wal_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.graph.wal"))
}

fn encode_wal_record(version: u64, batch: &DeltaBatch) -> Vec<u8> {
    let mut out = Vec::new();
    codec::put_u64(&mut out, version);
    batch.encode_into(&mut out);
    out
}

fn decode_wal_record(record: &[u8]) -> Result<(u64, DeltaBatch), graphgen_common::CodecError> {
    let mut r = Reader::new(record);
    let version = r.u64()?;
    let batch = DeltaBatch::decode(&mut r)?;
    r.expect_end()?;
    Ok((version, batch))
}

/// Graph WAL records additionally carry the database version the batch
/// was committed as — the cross-log stamp recovery uses to correlate a
/// graph's log with `db.wal` (the two are appended non-atomically).
fn encode_graph_wal_record(version: u64, db_version: u64, batch: &DeltaBatch) -> Vec<u8> {
    let mut out = Vec::new();
    codec::put_u64(&mut out, version);
    codec::put_u64(&mut out, db_version);
    batch.encode_into(&mut out);
    out
}

fn decode_graph_wal_record(
    record: &[u8],
) -> Result<(u64, u64, DeltaBatch), graphgen_common::CodecError> {
    let mut r = Reader::new(record);
    let version = r.u64()?;
    let db_version = r.u64()?;
    let batch = DeltaBatch::decode(&mut r)?;
    r.expect_end()?;
    Ok((version, db_version, batch))
}

/// Re-apply a recovered batch to the database (replay path: the mutations
/// were already validated when first applied, and deletes name exact rows
/// the table held, so the regenerated deltas match the logged ones).
fn replay_batch_on_db(db: &mut Database, batch: &DeltaBatch) -> ServeResult<()> {
    use graphgen_reldb::DeltaOp;
    for delta in batch.deltas() {
        // Preserve intra-delta order: group maximal runs of same-op rows.
        let mut run_op: Option<DeltaOp> = None;
        let mut run: Vec<Vec<Value>> = Vec::new();
        let flush = |db: &mut Database,
                     op: Option<DeltaOp>,
                     run: &mut Vec<Vec<Value>>|
         -> ServeResult<()> {
            match op {
                Some(DeltaOp::Insert) => {
                    db.insert_rows(delta.table(), std::mem::take(run))?;
                }
                Some(DeltaOp::Delete) => {
                    db.delete_rows(delta.table(), &std::mem::take(run))?;
                }
                None => {}
            }
            Ok(())
        };
        for row in delta.rows() {
            if run_op != Some(row.op) {
                flush(db, run_op, &mut run)?;
                run_op = Some(row.op);
            }
            run.push(row.values.clone());
        }
        flush(db, run_op, &mut run)?;
    }
    Ok(())
}

fn write_db_snapshot(inner: &mut Inner) -> ServeResult<()> {
    let Some(dir) = inner.dir.clone() else {
        return Ok(());
    };
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&DB_SNAP_MAGIC);
    codec::put_u64(&mut bytes, inner.db_version);
    inner.db.encode_into(&mut bytes);
    seal(&mut bytes);
    write_file_atomic(&dir.join("db.snap"), &bytes, inner.cfg.fsync)?;
    Ok(())
}

/// `db_version` is passed explicitly (not read off the snapshot) because a
/// compaction may stamp a graph as consistent with a database version
/// *newer* than the one it was published at — every batch in between left
/// its tables untouched. The snapshot is written from the **working**
/// handle: it owns the delta-maintenance state the recovered graph
/// continues from (published reader clones deliberately carry none).
fn write_graph_snapshot(
    dir: &Path,
    state: &GraphState,
    db_version: u64,
    fsync: bool,
) -> ServeResult<()> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&GRAPH_SNAP_MAGIC);
    codec::put_u64(&mut bytes, state.current.version());
    codec::put_u64(&mut bytes, db_version);
    codec::put_str(&mut bytes, &state.dsl);
    codec::put_len(&mut bytes, state.frozen.len());
    for plan in &state.frozen {
        codec::put_len(&mut bytes, plan.cuts.len());
        for &cut in &plan.cuts {
            codec::put_u8(&mut bytes, u8::from(cut));
        }
        for &out in &plan.planned_outputs {
            codec::put_f64(&mut bytes, out);
        }
        codec::put_f64(&mut bytes, plan.planned_cost);
    }
    codec::put_bytes(&mut bytes, &state.working.to_snapshot_bytes());
    seal(&mut bytes);
    write_file_atomic(&graph_snap_path(dir, state.current.name()), &bytes, fsync)?;
    Ok(())
}

fn compact_graph(
    dir: &Path,
    state: &mut GraphState,
    db_version: u64,
    fsync: bool,
) -> ServeResult<()> {
    write_graph_snapshot(dir, state, db_version, fsync)?;
    if let Some(wal) = state.wal.as_mut() {
        wal.reset()?;
    }
    state.durable_db_version = db_version;
    Ok(())
}

/// Recover one graph: load its snapshot, replay its WAL, then reconcile
/// with the database log — the graph WAL and `db.wal` are appended
/// non-atomically, so a crash between the two appends of a batch leaves
/// the batch in the database log only. `db_tail` holds the db-WAL batches
/// newer than `db.snap` (in commit order); any of them newer than the
/// graph's own db-version stamp is replayed here (and logged, so the
/// catch-up is itself durable), exactly as the live write path would have:
/// batches touching none of the graph's tables advance the stamp without
/// creating a version.
///
/// The second return is the number of WAL records replayed (own log plus
/// db-tail catch-up) — the caller's `graphgen_recovery_records_total`.
fn recover_graph(
    name: &str,
    snap_path: &Path,
    dir: &Path,
    db_snap_version: u64,
    db_tail: &[(u64, DeltaBatch)],
    threads: usize,
    fsync: bool,
) -> ServeResult<(GraphState, u64)> {
    let bytes = std::fs::read(snap_path)?;
    let file = snap_path.display().to_string();
    let content =
        unseal(&bytes).ok_or_else(|| ServeError::corrupt(&file, "integrity checksum mismatch"))?;
    let mut r = Reader::new(content);
    type SnapParts = (u64, u64, String, Vec<FrozenChainPlan>, Vec<u8>);
    let parse = |r: &mut Reader<'_>| -> Result<SnapParts, graphgen_common::CodecError> {
        r.expect_magic(&GRAPH_SNAP_MAGIC)?;
        let version = r.u64()?;
        let db_version = r.u64()?;
        let dsl = r.str()?.to_string();
        let n_chains = r.len()?;
        let mut frozen = Vec::with_capacity(n_chains);
        for _ in 0..n_chains {
            let n_joins = r.len()?;
            let mut cuts = Vec::with_capacity(n_joins);
            for _ in 0..n_joins {
                cuts.push(r.u8()? != 0);
            }
            let mut planned_outputs = Vec::with_capacity(n_joins);
            for _ in 0..n_joins {
                planned_outputs.push(r.f64()?);
            }
            let planned_cost = r.f64()?;
            frozen.push(FrozenChainPlan {
                cuts,
                planned_outputs,
                planned_cost,
            });
        }
        let handle_bytes = r.bytes()?.to_vec();
        r.expect_end()?;
        Ok((version, db_version, dsl, frozen, handle_bytes))
    };
    let (snap_version, snap_db_version, dsl, frozen, handle_bytes) =
        parse(&mut r).map_err(|e| ServeError::corrupt(&file, e))?;
    let mut handle = GraphHandle::from_snapshot_bytes(&handle_bytes)?;
    handle.set_threads(threads);
    let (mut wal, records) = Wal::open(graph_wal_path(dir, name))?;
    let wal_file = wal.path().display().to_string();
    let mut version = snap_version;
    let mut db_version = snap_db_version;
    let mut replayed = 0u64;
    for record in records {
        let (record_version, record_db_version, batch) =
            decode_graph_wal_record(&record).map_err(|e| ServeError::corrupt(&wal_file, e))?;
        if record_version <= snap_version {
            continue; // folded into the snapshot before the crash
        }
        if record_db_version <= db_version {
            // A record past the snapshot must carry a newer db stamp
            // (stamps grow strictly across a graph's commits): this one is
            // debris from a previous incarnation of the name.
            return Err(ServeError::corrupt(
                &wal_file,
                format!(
                    "record v{record_version} has database stamp \
                     {record_db_version} <= {db_version}: stale log"
                ),
            ));
        }
        handle.apply_batch(&batch)?;
        version = record_version;
        db_version = record_db_version;
        replayed += 1;
    }
    let db_recovered = db_tail.last().map_or(db_snap_version, |(v, _)| *v);
    if db_version > db_recovered {
        // The db WAL is appended before the graph WAL, so with durability
        // on a graph can never be ahead of its database. Finding one means
        // foreign files (a previous incarnation's graph surviving next to
        // a recreated database) or fsync-off reordering — either way its
        // batches do not correspond to this database's history.
        return Err(ServeError::corrupt(
            &file,
            format!(
                "graph is ahead of its database (stamped database version \
                 {db_version}, recovered database at {db_recovered}): the graph \
                 belongs to another incarnation; re-extract it"
            ),
        ));
    }
    if db_version < db_snap_version {
        // The batches between this graph's stamp and db.snap were folded
        // away, so the graph can no longer be caught up from the logs. No
        // crash layout produces this (db compaction folds lagging graphs
        // before truncating db.wal) — refuse rather than silently serve a
        // graph behind its database.
        return Err(ServeError::corrupt(
            &file,
            format!(
                "graph is consistent with database version {db_version} but db.snap \
                 is at {db_snap_version} and the batches between were compacted \
                 away; re-extract the graph"
            ),
        ));
    }
    let mut durable_db_version = db_version;
    let tables = handle.referenced_tables();
    for (batch_db_version, batch) in db_tail {
        if *batch_db_version <= db_version {
            continue; // already in the graph's own snapshot or log
        }
        if batch_affects(batch, &tables) {
            handle.apply_batch(batch)?;
            version += 1;
            wal.append(
                &encode_graph_wal_record(version, *batch_db_version, batch),
                fsync,
            )?;
            durable_db_version = *batch_db_version;
            replayed += 1;
        }
        db_version = *batch_db_version;
    }
    // Drift state is recomputed by `open_with` once every graph is back
    // (it needs the recovered database's catalog); the frozen plans
    // themselves came off the snapshot above.
    let chains = graphgen_dsl::compile(&dsl).map_or_else(|_| Vec::new(), |spec| spec.edges);
    Ok((
        GraphState {
            dsl,
            chains,
            frozen,
            drift: 1.0,
            stale_plan: false,
            current: Arc::new(GraphSnapshot {
                name: name.to_string(),
                version,
                db_version,
                handle: handle.reader_clone(),
            }),
            working: handle,
            wal: Some(wal),
            durable_db_version,
        },
        replayed,
    ))
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    pub(crate) use crate::testutil::fig1_db;
    use crate::testutil::TempDir;

    pub(crate) const Q1: &str = "Nodes(ID, Name) :- Author(ID, Name). \
                                 Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).";

    #[test]
    fn extract_publish_read() {
        let service = GraphService::in_memory(fig1_db());
        let snap = service.extract("coauthors", Q1).unwrap();
        assert_eq!(snap.version(), 1);
        assert_eq!(snap.name(), "coauthors");
        let read = service.snapshot("coauthors").unwrap();
        assert!(Arc::ptr_eq(&snap, &read));
        assert_eq!(service.names(), vec!["coauthors".to_string()]);
        assert!(service.snapshot("nope").is_err());
        assert!(matches!(
            service.extract("coauthors", Q1),
            Err(ServeError::DuplicateGraph(_))
        ));
        assert!(matches!(
            service.extract("bad name", Q1),
            Err(ServeError::BadName(_))
        ));
    }

    #[test]
    fn apply_publishes_new_version_and_pins_old_readers() {
        let service = GraphService::in_memory(fig1_db());
        let v1 = service.extract("g", Q1).unwrap();
        let before = v1.canonical_bytes();
        let outcome = service
            .apply(&[TableMutation::new(
                "AuthorPub",
                vec![vec![Value::int(2), Value::int(3)]],
                vec![],
            )])
            .unwrap();
        assert_eq!(outcome.rows, 1);
        assert_eq!(outcome.graphs.len(), 1);
        assert_eq!(outcome.graphs[0].1, 2);
        let v2 = service.snapshot("g").unwrap();
        assert_eq!(v2.version(), 2);
        assert_ne!(v2.canonical_bytes(), before);
        // The pinned v1 snapshot is untouched.
        assert_eq!(v1.canonical_bytes(), before);
        assert_eq!(v1.version(), 1);
    }

    #[test]
    fn noop_apply_keeps_the_version() {
        let service = GraphService::in_memory(fig1_db());
        service.extract("g", Q1).unwrap();
        // Deleting a never-present row mutates nothing anywhere.
        let outcome = service
            .apply(&[TableMutation::new(
                "AuthorPub",
                vec![],
                vec![vec![Value::int(77), Value::int(77)]],
            )])
            .unwrap();
        assert_eq!(outcome.rows, 0);
        assert!(outcome.graphs.is_empty());
        assert_eq!(service.snapshot("g").unwrap().version(), 1);
    }

    #[test]
    fn apply_fans_out_to_every_registered_graph() {
        let service = GraphService::in_memory(fig1_db());
        service.extract("a", Q1).unwrap();
        // Graph b only reads the Author table (name-collision edges:
        // vacuous here, but a valid spec).
        service
            .extract(
                "b",
                "Nodes(ID, Name) :- Author(ID, Name). \
                 Edges(A, B) :- Author(A, N), Author(B, N).",
            )
            .unwrap();
        let outcome = service
            .apply(&[TableMutation::new(
                "Author",
                vec![vec![Value::int(9), Value::str("a9")]],
                vec![],
            )])
            .unwrap();
        // Both graphs see the new author node.
        assert_eq!(outcome.graphs.len(), 2);
        assert_eq!(service.snapshot("a").unwrap().version(), 2);
        assert_eq!(service.snapshot("b").unwrap().version(), 2);
        // A mutation only one graph cares about bumps only that graph.
        let outcome = service
            .apply(&[TableMutation::new(
                "AuthorPub",
                vec![vec![Value::int(9), Value::int(1)]],
                vec![],
            )])
            .unwrap();
        assert_eq!(outcome.graphs.len(), 1);
        assert_eq!(outcome.graphs[0].0, "a");
        assert_eq!(service.snapshot("b").unwrap().version(), 2);
    }

    #[test]
    fn stats_and_drop() {
        let service = GraphService::in_memory(fig1_db());
        service.extract("g", Q1).unwrap();
        let (stats, rows) = service.stats();
        assert_eq!(rows, 13);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].name, "g");
        assert_eq!(stats[0].version, 1);
        assert_eq!(stats[0].vertices, 5);
        assert_eq!(stats[0].rep, "C-DUP");
        assert!(stats[0].edges > 0);
        service.drop_graph("g").unwrap();
        assert!(service.names().is_empty());
        assert!(matches!(
            service.drop_graph("g"),
            Err(ServeError::UnknownGraph(_))
        ));
    }

    #[test]
    fn invalid_mutations_are_rejected_before_anything_mutates() {
        let service = GraphService::in_memory(fig1_db());
        service.extract("g", Q1).unwrap();
        let rows_before = service.stats().1;
        // A batch whose *second* mutation is invalid must leave the first
        // unapplied too (pre-validation covers the whole call).
        let err = service
            .apply(&[
                TableMutation::new(
                    "Author",
                    vec![vec![Value::int(8), Value::str("a8")]],
                    vec![],
                ),
                TableMutation::new("Nope", vec![vec![Value::int(1)]], vec![]),
            ])
            .unwrap_err();
        assert!(matches!(err, ServeError::Graph(_)));
        // Schema mismatches are caught the same way.
        let err = service
            .apply(&[
                TableMutation::new(
                    "Author",
                    vec![vec![Value::int(8), Value::str("a8")]],
                    vec![],
                ),
                TableMutation::new(
                    "AuthorPub",
                    vec![vec![Value::str("oops"), Value::int(1)]],
                    vec![],
                ),
            ])
            .unwrap_err();
        assert!(matches!(err, ServeError::Graph(_)));
        assert_eq!(
            service.stats().1,
            rows_before,
            "db mutated by rejected call"
        );
        assert_eq!(service.snapshot("g").unwrap().version(), 1);
        // The writer is NOT wedged: validation failures are clean no-ops.
        let outcome = service
            .apply(&[TableMutation::new(
                "Author",
                vec![vec![Value::int(8), Value::str("a8")]],
                vec![],
            )])
            .unwrap();
        assert_eq!(outcome.graphs.len(), 1);
    }

    #[test]
    fn persistent_roundtrip_snapshot_plus_wal() {
        let dir = TempDir::new("svc-roundtrip");
        let expected;
        {
            let service =
                GraphService::create(dir.path(), fig1_db(), ServiceConfig::default()).unwrap();
            service.extract("g", Q1).unwrap();
            service
                .apply(&[TableMutation::new(
                    "AuthorPub",
                    vec![vec![Value::int(2), Value::int(3)]],
                    vec![vec![Value::int(1), Value::int(1)]],
                )])
                .unwrap();
            expected = service.snapshot("g").unwrap().canonical_bytes();
            // Dropped without any explicit shutdown: everything needed for
            // recovery is already on disk.
        }
        let recovered = GraphService::open(dir.path()).unwrap();
        let snap = recovered.snapshot("g").unwrap();
        assert_eq!(snap.version(), 2);
        assert_eq!(snap.canonical_bytes(), expected);
        // The recovered service keeps serving writes: a1 joins publication
        // 3, gaining brand-new co-author edges.
        recovered
            .apply(&[TableMutation::new(
                "AuthorPub",
                vec![vec![Value::int(1), Value::int(3)]],
                vec![],
            )])
            .unwrap();
        assert_eq!(recovered.snapshot("g").unwrap().version(), 3);
    }

    #[test]
    fn create_refuses_existing_service_dir() {
        let dir = TempDir::new("svc-create-twice");
        let _first = GraphService::create(dir.path(), fig1_db(), ServiceConfig::default()).unwrap();
        assert!(matches!(
            GraphService::create(dir.path(), fig1_db(), ServiceConfig::default()),
            Err(ServeError::Corrupt { .. })
        ));
    }
}
