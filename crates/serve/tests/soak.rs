//! Snapshot-isolation soak test: reader threads race a writer through a
//! long stream of delta publishes and assert that **every** observed
//! snapshot is byte-identical (`canonical_bytes`) to a committed version —
//! never a torn mid-patch state — at 1, 2, and 8 reader threads.
//!
//! Protocol: the writer records `(version, canonical bytes)` for each
//! version right after publishing it (the writer lock serializes
//! publishes, so the post-`apply` snapshot *is* the just-committed
//! version). A reader that observes a version the writer has not recorded
//! yet spins briefly — the record always arrives — and then asserts the
//! bytes match. Readers also assert versions never go backwards.

use graphgen_common::SplitMix64;
use graphgen_reldb::{Column, Database, Schema, Table, Value};
use graphgen_serve::{GraphService, TableMutation};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const Q: &str = "Nodes(ID, Name) :- Author(ID, Name). \
                 Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).";

const AUTHORS: i64 = 25;
const PUBS: i64 = 12;

fn seed_db(rng: &mut SplitMix64) -> Database {
    let mut author = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
    for a in 1..=AUTHORS {
        author
            .push_row(vec![Value::int(a), Value::str(format!("a{a}"))])
            .unwrap();
    }
    let mut ap = Table::new(Schema::new(vec![Column::int("aid"), Column::int("pid")]));
    for _ in 0..60 {
        ap.push_row(vec![
            Value::int(rng.next_below(AUTHORS as u64) as i64 + 1),
            Value::int(rng.next_below(PUBS as u64) as i64 + 1),
        ])
        .unwrap();
    }
    let mut db = Database::new();
    db.register("Author", author).unwrap();
    db.register("AuthorPub", ap).unwrap();
    db
}

fn random_mutation(rng: &mut SplitMix64) -> TableMutation {
    let mut inserts = Vec::new();
    let mut deletes = Vec::new();
    for _ in 0..rng.next_below(3) + 1 {
        let r = vec![
            Value::int(rng.next_below(AUTHORS as u64) as i64 + 1),
            Value::int(rng.next_below(PUBS as u64) as i64 + 1),
        ];
        if rng.next_below(3) == 0 {
            deletes.push(r);
        } else {
            inserts.push(r);
        }
    }
    TableMutation::new("AuthorPub", inserts, deletes)
}

/// Run the soak with `readers` reader threads; returns (publishes, reads).
fn soak(readers: usize, seed: u64, target_publishes: u64) -> (u64, u64) {
    let mut rng = SplitMix64::new(seed);
    let service = Arc::new(GraphService::in_memory(seed_db(&mut rng)));
    service.extract("g", Q).unwrap();

    // version -> canonical bytes of every committed version.
    let committed: Arc<Mutex<HashMap<u64, Vec<u8>>>> = Arc::new(Mutex::new(HashMap::new()));
    {
        let v1 = service.snapshot("g").unwrap();
        committed
            .lock()
            .unwrap()
            .insert(v1.version(), v1.canonical_bytes());
    }
    let done = Arc::new(AtomicBool::new(false));
    let total_reads = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..readers {
            let service = Arc::clone(&service);
            let committed = Arc::clone(&committed);
            let done = Arc::clone(&done);
            handles.push(s.spawn(move || {
                let mut reads = 0u64;
                let mut last_version = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let snap = service.snapshot("g").unwrap();
                    assert!(
                        snap.version() >= last_version,
                        "version went backwards: {} after {last_version}",
                        snap.version()
                    );
                    last_version = snap.version();
                    let bytes = snap.canonical_bytes();
                    // The writer records right after publish; spin until
                    // this version's bytes are available.
                    let expected = loop {
                        if let Some(b) = committed.lock().unwrap().get(&snap.version()) {
                            break b.clone();
                        }
                        std::thread::yield_now();
                    };
                    assert_eq!(
                        bytes,
                        expected,
                        "observed snapshot at version {} is not the committed state",
                        snap.version()
                    );
                    reads += 1;
                }
                reads
            }));
        }

        // The single writer.
        let mut publishes = 0u64;
        let mut attempts = 0u64;
        while publishes < target_publishes {
            attempts += 1;
            assert!(
                attempts < target_publishes * 50,
                "mutation stream failed to publish enough versions"
            );
            let outcome = service.apply(&[random_mutation(&mut rng)]).unwrap();
            if outcome.graphs.is_empty() {
                continue;
            }
            publishes += 1;
            let snap = service.snapshot("g").unwrap();
            committed
                .lock()
                .unwrap()
                .insert(snap.version(), snap.canonical_bytes());
        }
        done.store(true, Ordering::Relaxed);
        let reads: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        (publishes, reads)
    });
    total_reads
}

#[test]
fn soak_one_reader() {
    let (publishes, reads) = soak(1, 0xA11CE, 55);
    assert!(publishes >= 55);
    assert!(reads > 0, "reader never completed a read");
}

#[test]
fn soak_two_readers() {
    let (publishes, reads) = soak(2, 0xB0B, 55);
    assert!(publishes >= 55);
    assert!(reads > 0);
}

#[test]
fn soak_eight_readers() {
    let (publishes, reads) = soak(8, 0xCAFE, 55);
    assert!(publishes >= 55, "need >= 50 publishes under 8 readers");
    assert!(reads > 0);
}

/// Reader-throughput guard for the `snapshot()` fast path: pinning a
/// version is one map lookup plus an `Arc` bump under the read lock, so an
/// active writer — who holds the *writer* mutex, never the published-map
/// write lock except for the atomic swap — must not starve readers. The
/// bound is deliberately generous (the writer legitimately competes for
/// CPU, which on a single-core runner costs readers real throughput); what
/// it catches is a regression to copying snapshots under the read lock or
/// holding it across a patch, either of which collapses reader throughput
/// by orders of magnitude.
#[test]
fn reader_throughput_survives_active_writer() {
    use std::time::{Duration, Instant};
    let window = Duration::from_millis(300);
    let mut rng = SplitMix64::new(0x7407);
    let measure = |with_writer: bool, rng: &mut SplitMix64| -> u64 {
        let service = Arc::new(GraphService::in_memory(seed_db(rng)));
        service.extract("g", Q).unwrap();
        let done = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            let reader = {
                let service = Arc::clone(&service);
                let done = Arc::clone(&done);
                s.spawn(move || {
                    let mut reads = 0u64;
                    while !done.load(Ordering::Relaxed) {
                        let snap = service.snapshot("g").unwrap();
                        std::hint::black_box(snap.version());
                        reads += 1;
                    }
                    reads
                })
            };
            let start = Instant::now();
            if with_writer {
                let mut wrng = SplitMix64::new(0xBADCAFE);
                while start.elapsed() < window {
                    service.apply(&[random_mutation(&mut wrng)]).unwrap();
                }
            } else {
                std::thread::sleep(window);
            }
            done.store(true, Ordering::Relaxed);
            reader.join().unwrap()
        })
    };
    let idle = measure(false, &mut rng);
    let busy = measure(true, &mut rng);
    assert!(idle > 0 && busy > 0, "reader made no progress");
    assert!(
        busy * 50 >= idle,
        "reader throughput collapsed under an active writer: \
         {busy} reads busy vs {idle} idle in {window:?}"
    );
}

/// The writer's correctness backstop: after the soak stream, the served
/// graph equals a from-scratch extraction on the mutated database.
#[test]
fn soak_final_state_matches_reextraction() {
    let mut rng = SplitMix64::new(0xF00D);
    let db_seed = SplitMix64::new(0xF00D); // same stream for the shadow db
    let service = GraphService::in_memory(seed_db(&mut rng));
    let mut shadow_rng = db_seed;
    let mut shadow_db = seed_db(&mut shadow_rng);
    service.extract("g", Q).unwrap();
    for _ in 0..40 {
        let m = random_mutation(&mut rng);
        let shadow_m = random_mutation(&mut shadow_rng);
        assert_eq!(m.table, shadow_m.table);
        service.apply(&[m]).unwrap();
        if !shadow_m.inserts.is_empty() {
            shadow_db
                .insert_rows(&shadow_m.table, shadow_m.inserts.clone())
                .unwrap();
        }
        if !shadow_m.deletes.is_empty() {
            shadow_db
                .delete_rows(&shadow_m.table, &shadow_m.deletes)
                .unwrap();
        }
    }
    let served = service.snapshot("g").unwrap().canonical_bytes();
    let fresh = graphgen_core::GraphGen::new(&shadow_db)
        .extract(Q)
        .unwrap()
        .canonical_bytes();
    assert_eq!(served, fresh, "served state diverged from re-extraction");
}
