//! The no-materialization guarantee, asserted through the counting
//! allocator: the condensed-direct degree and PageRank kernels, dispatched
//! by `compute_on_handle` on C-DUP and DEDUP-1 handles, must run without
//! allocating anything in the expanded graph's size class. Linking
//! `graphgen-bench` installs its `CountingAlloc` as this test binary's
//! global allocator, so `alloc::measure` sees every byte.

use graphgen_bench::alloc;
use graphgen_core::ConvertOptions;
use graphgen_datagen::{single_layer_database, SingleLayerConfig};
use graphgen_graph::{GraphRep, RepKind};
use graphgen_serve::{compute_on_handle, Algo, AnalyzeParams, GraphService};

#[test]
fn condensed_direct_kernels_never_materialize_the_expansion() {
    // Dense co-occurrence groups: ~40 values shared by ~100 rows each, so
    // the expanded clique edges dwarf the condensed adjacency.
    let (db, query) = single_layer_database(SingleLayerConfig {
        rows: 4_000,
        selectivity: 0.01,
        seed: 17,
    });
    let service = GraphService::in_memory(db);
    let snap = service.extract("dense", &query).unwrap();
    let params = AnalyzeParams::default();

    let cdup = snap.handle().clone();
    assert_eq!(cdup.kind(), RepKind::CDup);
    let dedup1 = cdup
        .convert(RepKind::Dedup1, &ConvertOptions::default())
        .unwrap();

    // The size class the kernels must stay out of: one u32 endpoint per
    // expanded directed edge is the *floor* of any materialized expansion.
    let expansion_floor = cdup.expanded_edge_count() as usize * std::mem::size_of::<u32>();
    assert!(
        expansion_floor > 1 << 20,
        "workload too small to discriminate ({expansion_floor} bytes)"
    );

    for (label, handle) in [("C-DUP", &cdup), ("DEDUP-1", &dedup1)] {
        for (algo, expect_path) in [
            (
                Algo::Degree,
                if handle.kind() == RepKind::Dedup1 {
                    "aggregated"
                } else {
                    "merged"
                },
            ),
            (
                Algo::Pagerank,
                if handle.kind() == RepKind::Dedup1 {
                    "aggregated"
                } else {
                    "merged"
                },
            ),
        ] {
            let (outcome, stats) =
                alloc::measure(|| compute_on_handle(handle, algo, &params, None, 2).unwrap());
            assert_eq!(
                outcome.path.label(),
                expect_path,
                "{label} {}",
                algo.label()
            );
            assert!(
                stats.peak < expansion_floor / 8,
                "{label} {}: peak {} bytes live is in the expansion's size \
                 class (floor {expansion_floor}) — the kernel materialized \
                 something expansion-shaped",
                algo.label(),
                stats.peak
            );
        }
    }

    // Control: actually expanding blows straight through the same budget,
    // proving the threshold discriminates.
    let (_exp, stats) = alloc::measure(|| {
        cdup.convert(RepKind::Exp, &ConvertOptions::default())
            .unwrap()
    });
    assert!(
        stats.peak >= expansion_floor,
        "control: expansion peak {} should exceed the floor {expansion_floor}",
        stats.peak
    );
}
