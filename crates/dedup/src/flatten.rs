//! Multi-layer → single-layer conversion (§5.2.2).
//!
//! The DEDUP-1/DEDUP-2 algorithms require single-layer input. The paper
//! suggests "first converting [a multi-layer graph] into a single-layer
//! graph if possible (through expansion of all virtual nodes in all but one
//! layer)". We implement the equivalent direct construction: every virtual
//! node `V` with at least one real out-target becomes a single-layer virtual
//! node whose sources are all real nodes with a path to `V`; direct real
//! edges carry over. This preserves the logical edge set exactly and should
//! only be used when the multi-layer structure doesn't hide an explosion
//! (the paper's caveat).

use graphgen_common::FxHashSet;
use graphgen_graph::{CondensedBuilder, CondensedGraph, GraphRep, RealId, VirtId};

/// Flatten to a single-layer condensed graph.
pub fn flatten_to_single_layer(g: &CondensedGraph) -> CondensedGraph {
    if g.is_single_layer() {
        return g.clone();
    }
    let n_virt = g.num_virtual();
    // sources[v] = real nodes with a path to v.
    let mut sources: Vec<Vec<u32>> = vec![Vec::new(); n_virt];
    for u in 0..g.num_real_slots() as u32 {
        let mut visited: FxHashSet<u32> = FxHashSet::default();
        let mut stack: Vec<u32> = Vec::new();
        for a in g.real_out(RealId(u)) {
            if let Some(v) = a.as_virtual() {
                if visited.insert(v.0) {
                    stack.push(v.0);
                }
            }
        }
        while let Some(x) = stack.pop() {
            sources[x as usize].push(u);
            for a in g.virt_out(VirtId(x)) {
                if let Some(v) = a.as_virtual() {
                    if visited.insert(v.0) {
                        stack.push(v.0);
                    }
                }
            }
        }
    }
    let mut b = CondensedBuilder::new(g.num_real_slots());
    for (v, srcs) in sources.iter().enumerate() {
        let targets: Vec<RealId> = g
            .virt_out(VirtId(v as u32))
            .iter()
            .filter_map(|a| a.as_real())
            .collect();
        if targets.is_empty() || srcs.is_empty() {
            continue;
        }
        let nv = b.add_virtual();
        for &u in srcs {
            b.real_to_virtual(RealId(u), nv);
        }
        for &t in &targets {
            b.virtual_to_real(nv, t);
        }
    }
    // Direct edges carry over.
    for u in 0..g.num_real_slots() as u32 {
        for a in g.real_out(RealId(u)) {
            if let Some(r) = a.as_real() {
                b.direct(RealId(u), r);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_graph::expand_to_edge_list;

    #[test]
    fn single_layer_is_cloned() {
        let mut b = CondensedBuilder::new(3);
        b.clique(&[RealId(0), RealId(1), RealId(2)]);
        let g = b.build();
        let f = flatten_to_single_layer(&g);
        assert!(f.is_single_layer());
        assert_eq!(expand_to_edge_list(&f), expand_to_edge_list(&g));
    }

    #[test]
    fn tpch_like_three_layer_flattens() {
        // customers -> orders -> parts -> orders -> customers shape:
        // c0, c1 -> o0, o1 -> p0 -> o2 -> c2 ... simplified chain.
        let mut b = CondensedBuilder::new(3);
        let o1 = b.add_virtual();
        let p = b.add_virtual();
        let o2 = b.add_virtual();
        b.real_to_virtual(RealId(0), o1);
        b.real_to_virtual(RealId(1), o1);
        b.virtual_to_virtual(o1, p);
        b.virtual_to_virtual(p, o2);
        b.virtual_to_real(o2, RealId(1));
        b.virtual_to_real(o2, RealId(2));
        let g = b.build();
        let before = expand_to_edge_list(&g);
        let f = flatten_to_single_layer(&g);
        assert!(f.is_single_layer());
        assert_eq!(expand_to_edge_list(&f), before);
        // Only o2 has real targets -> exactly one virtual node survives.
        assert_eq!(f.num_virtual(), 1);
    }

    #[test]
    fn direct_edges_survive() {
        let mut b = CondensedBuilder::new(4);
        let v1 = b.add_virtual();
        let v2 = b.add_virtual();
        b.real_to_virtual(RealId(0), v1);
        b.virtual_to_virtual(v1, v2);
        b.virtual_to_real(v2, RealId(1));
        b.direct(RealId(2), RealId(3));
        let g = b.build();
        let f = flatten_to_single_layer(&g);
        assert_eq!(expand_to_edge_list(&f), expand_to_edge_list(&g));
    }

    #[test]
    fn mixed_real_and_virtual_targets() {
        // A virtual node with both a real target and a virtual child.
        let mut b = CondensedBuilder::new(3);
        let v1 = b.add_virtual();
        let v2 = b.add_virtual();
        b.real_to_virtual(RealId(0), v1);
        b.virtual_to_real(v1, RealId(1));
        b.virtual_to_virtual(v1, v2);
        b.virtual_to_real(v2, RealId(2));
        let g = b.build();
        let f = flatten_to_single_layer(&g);
        assert!(f.is_single_layer());
        assert_eq!(expand_to_edge_list(&f), expand_to_edge_list(&g));
        assert_eq!(f.num_virtual(), 2);
    }
}
