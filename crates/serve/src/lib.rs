//! `graphgen-serve` — the serving layer: snapshot-isolated concurrent
//! graph serving with binary persistence and crash recovery.
//!
//! The paper's GraphGen lives *inside* a live application: graphs are
//! extracted once and then queried continuously while the base tables keep
//! changing. This crate turns the single-owner, in-memory
//! `graphgen_core::GraphHandle` into something a server can run:
//!
//! * [`GraphService`] — a **versioned multi-graph registry**. Many reader
//!   threads take [`GraphService::snapshot`] and work on an immutable,
//!   version-pinned [`GraphSnapshot`] while a single writer applies
//!   [`DeltaBatch`]es and atomically publishes the next version — a
//!   reader's view is always byte-identical to *some* committed version,
//!   never a torn mid-patch state (snapshot isolation; enforced by the
//!   crate's soak tests at 1/2/8 reader threads);
//! * **persistence** — per-graph binary snapshots
//!   (`GraphHandle::to_snapshot_bytes`, magic-headed, length-prefixed
//!   little-endian) plus per-graph write-ahead delta logs with checksummed
//!   records, torn-tail truncation, and size-triggered log compaction.
//!   [`GraphService::open`] recovers the exact pre-crash committed state
//!   from any abrupt-drop layout, including mid-compaction ones;
//! * a **TCP front end** — the `graphgen-serve` binary: std
//!   `TcpListener`, thread per connection, newline-delimited text protocol
//!   (`EXTRACT` / `CHECK` / `EXPLAIN` / `NEIGHBORS` / `DEGREE` / `ANALYZE`
//!   / `APPLY` / `STATS` / `COMPACT` / `METRICS` / `TRACE` / `PING` /
//!   `SHUTDOWN`, see [`protocol`]);
//! * **observability** — every hot path records into a structured
//!   instrument registry ([`obs`]): per-verb request latency histograms,
//!   per-phase writer and extraction timings, WAL fsync/compaction/
//!   recovery costs, and the analyze-cache counters. `METRICS` renders a
//!   Prometheus-style exposition, `TRACE` drains a bounded ring of the
//!   slowest (or failed) recent operations with phase breakdowns;
//! * **served analytics** — the `ANALYZE` verb runs the `graphgen_algo`
//!   kernels on a pinned snapshot from a small background worker pool
//!   (readers and the writer never block on an analysis), caches results
//!   keyed `(graph, algo, params, version)` with single-flight
//!   deduplication, computes **directly on the condensed representation**
//!   where sound, and warm-starts PageRank/components from the previous
//!   version's cached result after a publish (see [`analyze`]).
//!
//! `EXTRACT` requests are statically validated against the live schema and
//! statistics before any extraction work ([`GraphService::check`] runs the
//! same analysis on demand via the `CHECK` verb); rejections are coded,
//! span-carrying one-liners, and `STATS` reports per-code rejection totals.
//!
//! **Plan drift detection.** Every registered graph freezes the plan it
//! was extracted with (the §4.2 cut set plus the estimates it was chosen
//! on). After each publish the writer re-costs that frozen plan against
//! the live catalog — pure arithmetic on the same unified cost engine the
//! planner and the `W105` lint use, no table scans — and `STATS` reports
//! `drift=<ratio>` (frozen cost over live min-cost) with a `stale_plan`
//! flag once the ratio exceeds [`ServiceConfig::drift_threshold`] or the
//! min-cost plan's shape changes outright. `EXPLAIN <name>` renders the
//! frozen-vs-live comparison; `EXPLAIN <name> <dsl…>` costs a candidate
//! program without extracting anything.
//!
//! No dependencies beyond the workspace and `std`.
//!
//! ```no_run
//! use graphgen_serve::{GraphService, ServiceConfig, TableMutation};
//! use graphgen_reldb::{Database, Value};
//!
//! # fn demo(db: Database) -> graphgen_serve::ServeResult<()> {
//! let service = GraphService::create("./graphs", db, ServiceConfig::default())?;
//! service.extract(
//!     "coauthors",
//!     "Nodes(ID, Name) :- Author(ID, Name). \
//!      Edges(A, B) :- AuthorPub(A, P), AuthorPub(B, P).",
//! )?;
//! // Readers: pin a version, no locks held afterwards.
//! let snap = service.snapshot("coauthors")?;
//! let _ = snap.handle().neighbors_by_key(&Value::int(4));
//! // The writer: mutate + publish version 2; `snap` is unaffected.
//! service.apply(&[TableMutation::new(
//!     "AuthorPub",
//!     vec![vec![Value::int(2), Value::int(3)]],
//!     vec![],
//! )])?;
//! # Ok(()) }
//! ```
//!
//! [`DeltaBatch`]: graphgen_reldb::DeltaBatch

#![warn(missing_docs)]

pub mod analyze;
pub mod error;
pub mod obs;
pub mod protocol;
pub mod server;
pub mod service;
pub mod testutil;
pub mod wal;

pub use analyze::{
    compute_on_handle, Algo, AnalysisEntry, AnalysisOutcome, AnalyzeCounters, AnalyzeParams,
};
pub use error::{ServeError, ServeResult};
pub use obs::{Obs, ServeMetrics, TraceEvent, TraceRing};
pub use server::{spawn, ServerHandle};
pub use service::{
    ApplyOutcome, GraphService, GraphSnapshot, GraphStats, ServiceConfig, TableMutation,
};
pub use wal::Wal;
